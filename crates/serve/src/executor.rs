//! The daemon's cell executor: in-flight dedup by cell key plus a
//! bounded worker pool that shards cold cells.
//!
//! Requests never compute cells on their connection threads. A request
//! resolves its grid to [`zbp_sim::session::SessionCell`]s, *admits*
//! each cold cell here — the first admitter becomes the cell's owner
//! and enqueues it, later admitters join the same [`CellSlot`] — and
//! then waits on the slots while worker threads drain the queue. Jobs
//! are grouped by workload row so a worker computes all of a row's
//! owned columns against one shared capture, exactly like the CLI's
//! lane-batched replay path.
//!
//! Workers coordinate with *other processes* through the cache's
//! advisory claim files ([`CellCache::try_claim`]): a claim held by a
//! concurrent CLI run (or second daemon) turns the cell into a wait on
//! that process's entry instead of a duplicate computation. Claims are
//! advisory — if the holder dies, the worker recomputes and the result
//! is bit-identical either way.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use zbp_sim::cache::{CellCache, CellKey};
use zbp_sim::session::SimSession;

use crate::metrics::ServeMetrics;

/// How a resolved cell got its result, as reported in `/run` progress
/// events.
pub mod provenance {
    /// Loaded from the cell cache without touching the worker pool.
    pub const CACHE_HIT: &str = "cache-hit";
    /// Computed by this daemon's worker pool.
    pub const COMPUTED: &str = "computed";
    /// Joined another request's in-flight computation of the same cell.
    pub const DEDUP: &str = "dedup";
    /// Served from the entry published by a concurrent *process* that
    /// held the cell's claim.
    pub const CLAIM_WAIT: &str = "claim-wait";
}

/// Observable lifecycle of one admitted cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotView {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is computing the cell's row group.
    Running,
    /// Resolved; the result is in the cell cache. Carries the slot's
    /// own provenance (owners report it verbatim; joiners report
    /// [`provenance::DEDUP`]).
    Done(&'static str),
    /// The computation panicked or could not be stored.
    Failed(String),
}

impl SlotView {
    fn is_resolved(&self) -> bool {
        matches!(self, SlotView::Done(_) | SlotView::Failed(_))
    }
}

/// Shared state of one in-flight cell: every request waiting on the
/// cell holds the same slot.
#[derive(Debug)]
pub struct CellSlot {
    state: Mutex<SlotView>,
    changed: Condvar,
}

impl CellSlot {
    fn new() -> Self {
        Self { state: Mutex::new(SlotView::Queued), changed: Condvar::new() }
    }

    /// Current lifecycle phase.
    pub fn view(&self) -> SlotView {
        self.state.lock().expect("slot lock").clone()
    }

    /// Blocks until the state differs from `seen` or `deadline` passes;
    /// `None` on timeout. Callers loop on this to observe the
    /// queued → running → done transitions individually.
    pub fn wait_change(&self, seen: &SlotView, deadline: Instant) -> Option<SlotView> {
        let mut state = self.state.lock().expect("slot lock");
        while *state == *seen {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) =
                self.changed.wait_timeout(state, deadline - now).expect("slot lock");
            state = next;
            if timeout.timed_out() && *state == *seen {
                return None;
            }
        }
        Some(state.clone())
    }

    /// Blocks until the slot resolves (done or failed) or `deadline`
    /// passes; `None` on timeout.
    pub fn wait_resolved(&self, deadline: Instant) -> Option<SlotView> {
        let mut view = self.view();
        while !view.is_resolved() {
            view = self.wait_change(&view, deadline)?;
        }
        Some(view)
    }

    fn set(&self, next: SlotView) {
        *self.state.lock().expect("slot lock") = next;
        self.changed.notify_all();
    }
}

/// One admitted cold cell inside a row job.
pub struct JobCell {
    /// Configuration column index within the job's session.
    pub col: usize,
    /// The cell's cache identity.
    pub key: CellKey,
    /// The slot every waiter observes.
    pub slot: Arc<CellSlot>,
}

/// A unit of worker-pool work: the owned cold cells of one workload
/// row, computed against one shared capture (lane-batched, store-warm)
/// exactly like a CLI cache miss.
pub struct Job {
    /// The session the row belongs to (per-request: carries the
    /// request's len/seed and the daemon's trace store).
    pub session: Arc<SimSession>,
    /// The shared on-disk cell cache.
    pub cache: Arc<CellCache>,
    /// Workload row index into the session.
    pub row: usize,
    /// The row's admitted cells, one per cold column.
    pub cells: Vec<JobCell>,
}

/// What [`Executor::admit`] decided about a cell.
pub enum Admission {
    /// First admitter: the caller must enqueue the cell in a [`Job`].
    Owner(Arc<CellSlot>),
    /// The cell is already in flight; wait on the returned slot.
    Joined(Arc<CellSlot>),
}

struct ExecState {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    draining: AtomicBool,
    inflight: Mutex<HashMap<String, Arc<CellSlot>>>,
    metrics: Arc<ServeMetrics>,
}

/// The dedup table + worker pool. One per daemon.
pub struct Executor {
    state: Arc<ExecState>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Executor {
    /// Spawns `workers` worker threads over an empty queue.
    pub fn new(workers: usize, metrics: Arc<ServeMetrics>) -> Self {
        let state = Arc::new(ExecState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            inflight: Mutex::new(HashMap::new()),
            metrics,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("zbp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();
        Self { state, workers: Mutex::new(handles) }
    }

    /// Registers interest in a cold cell: the first caller per key
    /// becomes the owner (and must submit a job containing the returned
    /// slot); concurrent callers join the owner's slot.
    pub fn admit(&self, key: &CellKey) -> Admission {
        let mut inflight = self.state.inflight.lock().expect("inflight lock");
        match inflight.entry(key.digest()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                Admission::Joined(Arc::clone(e.get()))
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let slot = Arc::new(CellSlot::new());
                e.insert(Arc::clone(&slot));
                self.state.metrics.inflight_cells.fetch_add(1, Ordering::Relaxed);
                Admission::Owner(slot)
            }
        }
    }

    /// Enqueues a row job for the worker pool.
    pub fn submit(&self, job: Job) {
        let mut queue = self.state.queue.lock().expect("queue lock");
        queue.push_back(job);
        self.state.metrics.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
        drop(queue);
        self.state.available.notify_one();
    }

    /// Graceful drain: stops accepting the *idle wait* (workers finish
    /// every queued job first), then joins all workers. Queued and
    /// running cells complete and land in the cache; nothing is
    /// abandoned half-stored (stores are atomic regardless).
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.available.notify_all();
        for handle in self.workers.lock().expect("workers lock").drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(state: &Arc<ExecState>) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    state.metrics.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
                    break Some(job);
                }
                if state.draining.load(Ordering::SeqCst) {
                    break None;
                }
                queue = state.available.wait(queue).expect("queue lock");
            }
        };
        let Some(job) = job else { return };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(state, &job)));
        if let Err(panic) = outcome {
            let msg = panic_message(&panic);
            for cell in &job.cells {
                // Only fail cells run_job had not yet resolved: a cell
                // resolved Done before the panic (cache hit, or a column
                // stored before a later one blew up) has a good result,
                // and re-resolving it would flip it to Failed and
                // double-count against the inflight table — possibly
                // clobbering a newer request's fresh admission of the
                // same key. This worker is the slot's only resolver, so
                // the view cannot change under us here.
                if !cell.slot.view().is_resolved() {
                    resolve(state, cell, SlotView::Failed(msg.clone()));
                }
            }
        }
    }
}

/// Computes one row job: re-check the cache (cells may have landed
/// since admission), claim the rest, lane-batch the claimed columns
/// through one capture, wait out externally-claimed cells, and resolve
/// every slot.
fn run_job(state: &Arc<ExecState>, job: &Job) {
    for cell in &job.cells {
        cell.slot.set(SlotView::Running);
    }
    let mut mine: Vec<&JobCell> = Vec::new();
    let mut theirs: Vec<&JobCell> = Vec::new();
    let mut guards = Vec::new();
    for cell in &job.cells {
        // Another request, the CLI, or a prior run may have published
        // the cell between admission and execution.
        if job.cache.load(&cell.key).is_some() {
            state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            resolve(state, cell, SlotView::Done(provenance::CACHE_HIT));
        } else {
            match job.cache.try_claim(&cell.key) {
                Some(guard) => {
                    guards.push(guard);
                    mine.push(cell);
                }
                None => theirs.push(cell),
            }
        }
    }
    if !mine.is_empty() {
        let cols: Vec<usize> = mine.iter().map(|c| c.col).collect();
        let results = job.session.compute_row(job.row, &cols);
        for (cell, core) in mine.iter().zip(&results) {
            use zbp_support::json::ToJson;
            job.cache.store(&cell.key, &core.to_json());
        }
        // Release the claims only after every store: a waiter that sees
        // our claim vanish trusts one final cache look.
        drop(guards);
        state.metrics.cells_computed.fetch_add(mine.len() as u64, Ordering::Relaxed);
        for cell in &mine {
            resolve(state, cell, SlotView::Done(provenance::COMPUTED));
        }
    }
    for cell in theirs {
        match job.cache.wait_for(&cell.key) {
            Some(_) => {
                state.metrics.claims_lost.fetch_add(1, Ordering::Relaxed);
                resolve(state, cell, SlotView::Done(provenance::CLAIM_WAIT));
            }
            None => {
                // The claim holder died without publishing: recompute.
                use zbp_support::json::ToJson;
                let results = job.session.compute_row(job.row, &[cell.col]);
                job.cache.store(&cell.key, &results[0].to_json());
                state.metrics.cells_computed.fetch_add(1, Ordering::Relaxed);
                resolve(state, cell, SlotView::Done(provenance::COMPUTED));
            }
        }
    }
}

fn resolve(state: &Arc<ExecState>, cell: &JobCell, view: SlotView) {
    let digest = cell.key.digest();
    let mut inflight = state.inflight.lock().expect("inflight lock");
    // Remove (and count down) only this cell's own entry: once a slot
    // resolves, the key may be re-admitted by a newer request whose
    // fresh slot then owns the table entry — a stray second resolve of
    // the old slot must not evict it or underflow the gauge.
    if inflight.get(&digest).is_some_and(|s| Arc::ptr_eq(s, &cell.slot)) {
        inflight.remove(&digest);
        state.metrics.inflight_cells.fetch_sub(1, Ordering::Relaxed);
    }
    drop(inflight);
    cell.slot.set(view);
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("cell computation panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("cell computation panicked: {s}")
    } else {
        "cell computation panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use zbp_sim::experiments::ExperimentOptions;
    use zbp_sim::registry;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("zbp-serve-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_session() -> Arc<SimSession> {
        let opts = ExperimentOptions::quick(2_000, 7);
        let spec = registry::find("fig4").expect("fig4 registered");
        Arc::new(spec.grid_session(&opts).expect("fig4 is a grid"))
    }

    #[test]
    fn owner_computes_and_joiners_share_one_slot() {
        let dir = tmp_dir("dedup");
        let cache = Arc::new(CellCache::at(&dir));
        let metrics = Arc::new(ServeMetrics::default());
        let exec = Executor::new(2, Arc::clone(&metrics));
        let session = small_session();
        let cell = &session.cells()[0];

        let Admission::Owner(slot) = exec.admit(&cell.key) else {
            panic!("first admit must own");
        };
        let Admission::Joined(joined) = exec.admit(&cell.key) else {
            panic!("second admit must join");
        };
        assert!(Arc::ptr_eq(&slot, &joined));

        exec.submit(Job {
            session: Arc::clone(&session),
            cache: Arc::clone(&cache),
            row: cell.row,
            cells: vec![JobCell { col: cell.col, key: cell.key.clone(), slot: Arc::clone(&slot) }],
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        assert_eq!(slot.wait_resolved(deadline), Some(SlotView::Done(provenance::COMPUTED)));
        assert!(cache.load(&cell.key).is_some(), "result landed in the cache");
        assert_eq!(metrics.cells_computed.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.inflight_cells.load(Ordering::Relaxed), 0);

        // Re-admitting a resolved cell starts a fresh slot; its job
        // now short-circuits on the cache.
        let Admission::Owner(slot2) = exec.admit(&cell.key) else {
            panic!("resolved cells leave the dedup table");
        };
        exec.submit(Job {
            session: Arc::clone(&session),
            cache: Arc::clone(&cache),
            row: cell.row,
            cells: vec![JobCell { col: cell.col, key: cell.key.clone(), slot: Arc::clone(&slot2) }],
        });
        assert_eq!(slot2.wait_resolved(deadline), Some(SlotView::Done(provenance::CACHE_HIT)));
        exec.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_finishes_queued_jobs_before_exiting() {
        let dir = tmp_dir("drain");
        let cache = Arc::new(CellCache::at(&dir));
        let exec = Executor::new(1, Arc::new(ServeMetrics::default()));
        let session = small_session();
        let cells = session.cells();
        let mut slots = Vec::new();
        for cell in &cells {
            let Admission::Owner(slot) = exec.admit(&cell.key) else { panic!("cold admit") };
            exec.submit(Job {
                session: Arc::clone(&session),
                cache: Arc::clone(&cache),
                row: cell.row,
                cells: vec![JobCell {
                    col: cell.col,
                    key: cell.key.clone(),
                    slot: Arc::clone(&slot),
                }],
            });
            slots.push(slot);
        }
        // Drain with the queue still full: every queued cell must still
        // resolve (graceful drain), none may be abandoned.
        exec.drain();
        for slot in &slots {
            assert!(matches!(slot.view(), SlotView::Done(_)), "drained cell resolved");
        }
        for cell in &cells {
            assert!(cache.load(&cell.key).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_job_fails_only_unresolved_cells() {
        let dir = tmp_dir("panic");
        let session = small_session();
        let cells = session.cells();
        // Two cells of one row: the first is pre-cached (resolved Done
        // inside run_job before any computation), the second's store
        // panics via the cache's abort hook.
        let (a, b) = {
            let mut pair = None;
            'outer: for (i, x) in cells.iter().enumerate() {
                for y in &cells[i + 1..] {
                    if y.row == x.row {
                        pair = Some((x.clone(), y.clone()));
                        break 'outer;
                    }
                }
            }
            pair.expect("grid has two columns in one row")
        };
        CellCache::at(&dir).store(&a.key, &zbp_support::json::Json::Num(1.0));
        let cache = Arc::new(CellCache::at(&dir).abort_after_stores(0));
        let metrics = Arc::new(ServeMetrics::default());
        let exec = Executor::new(1, Arc::clone(&metrics));
        let Admission::Owner(slot_a) = exec.admit(&a.key) else { panic!("cold admit a") };
        let Admission::Owner(slot_b) = exec.admit(&b.key) else { panic!("cold admit b") };
        exec.submit(Job {
            session: Arc::clone(&session),
            cache,
            row: a.row,
            cells: vec![
                JobCell { col: a.col, key: a.key.clone(), slot: Arc::clone(&slot_a) },
                JobCell { col: b.col, key: b.key.clone(), slot: Arc::clone(&slot_b) },
            ],
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        // The pre-resolved cell keeps its result; only the cell the
        // panic actually lost reports Failed.
        assert_eq!(slot_a.wait_resolved(deadline), Some(SlotView::Done(provenance::CACHE_HIT)));
        assert!(matches!(slot_b.wait_resolved(deadline), Some(SlotView::Failed(_))));
        assert_eq!(slot_a.view(), SlotView::Done(provenance::CACHE_HIT));
        // The inflight gauge reconciles to zero (no double-decrement
        // underflow) and both keys are re-admittable, not wedged.
        assert_eq!(metrics.inflight_cells.load(Ordering::Relaxed), 0);
        assert!(matches!(exec.admit(&a.key), Admission::Owner(_)));
        assert!(matches!(exec.admit(&b.key), Admission::Owner(_)));
        exec.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeout_leaves_the_slot_running_and_cache_consistent() {
        let dir = tmp_dir("timeout");
        let cache = Arc::new(CellCache::at(&dir));
        let exec = Executor::new(1, Arc::new(ServeMetrics::default()));
        let session = small_session();
        let cell = &session.cells()[0];
        let Admission::Owner(slot) = exec.admit(&cell.key) else { panic!("cold admit") };
        exec.submit(Job {
            session: Arc::clone(&session),
            cache: Arc::clone(&cache),
            row: cell.row,
            cells: vec![JobCell { col: cell.col, key: cell.key.clone(), slot: Arc::clone(&slot) }],
        });
        // A deadline in the past times out immediately — the caller
        // abandons the wait, not the computation.
        assert_eq!(slot.wait_resolved(Instant::now()), None);
        // The cell still completes and its entry is whole (the store is
        // atomic): timing out a request never leaves a partial entry.
        assert!(matches!(
            slot.wait_resolved(Instant::now() + Duration::from_secs(60)),
            Some(SlotView::Done(_))
        ));
        let entry = cache.load(&cell.key).expect("entry present");
        assert!(!entry.render().is_empty());
        exec.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
