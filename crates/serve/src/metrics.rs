//! Daemon observability: lock-free counters plus latency histograms,
//! rendered as the `/metrics` endpoint's JSON body.
//!
//! The histograms reuse [`zbp_predictor::statsbus::Histogram`] — the
//! same log₂-bucketed shape the pipeline's `StatsBus` samples use — so
//! serve latencies and simulator quantities read identically in
//! dashboards and the bench harness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use zbp_predictor::statsbus::Histogram;
use zbp_support::json::Json;

/// All counters and histograms the daemon exports. Shared behind an
/// `Arc`; every field is independently thread-safe.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// HTTP requests accepted (any route).
    pub requests: AtomicU64,
    /// `/run` requests currently being served.
    pub active_requests: AtomicU64,
    /// Cells requested across all `/run` calls (grid cells only).
    pub cells_requested: AtomicU64,
    /// Cells answered straight from the cell cache.
    pub cache_hits: AtomicU64,
    /// Cells computed by this daemon's worker pool.
    pub cells_computed: AtomicU64,
    /// Cells served by joining another request's in-flight computation.
    pub dedup_joins: AtomicU64,
    /// Cells whose cross-process claim was held elsewhere (a concurrent
    /// CLI run or second daemon) and were served from that entry.
    pub claims_lost: AtomicU64,
    /// Requests that ended in an error event (bad request, timeout,
    /// failed cell).
    pub errors: AtomicU64,
    /// Row jobs currently queued for the worker pool.
    pub queue_depth: AtomicU64,
    /// Cells currently queued or running.
    pub inflight_cells: AtomicU64,
    /// Per-cell wait latency when the cell was already cached, µs.
    warm_us: Mutex<Histogram>,
    /// Per-cell admission→done latency when the cell had to be
    /// computed (or joined), µs — wall-clock from when the request
    /// admitted the cell, not from when its wait began.
    cold_us: Mutex<Histogram>,
}

impl ServeMetrics {
    /// Records how long a `/run` caller waited for one warm
    /// (cache-hit) cell.
    pub fn observe_warm(&self, elapsed: Duration) {
        self.warm_us.lock().expect("metrics lock").observe(elapsed.as_micros() as u64);
    }

    /// Records how long a `/run` caller waited for one cold (computed
    /// or dedup-joined) cell.
    pub fn observe_cold(&self, elapsed: Duration) {
        self.cold_us.lock().expect("metrics lock").observe(elapsed.as_micros() as u64);
    }

    /// The `/metrics` response body.
    pub fn to_json(&self) -> Json {
        let c = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            ("requests".into(), c(&self.requests)),
            ("active_requests".into(), c(&self.active_requests)),
            ("cells_requested".into(), c(&self.cells_requested)),
            ("cache_hits".into(), c(&self.cache_hits)),
            ("cells_computed".into(), c(&self.cells_computed)),
            ("dedup_joins".into(), c(&self.dedup_joins)),
            ("claims_lost".into(), c(&self.claims_lost)),
            ("errors".into(), c(&self.errors)),
            ("queue_depth".into(), c(&self.queue_depth)),
            ("inflight_cells".into(), c(&self.inflight_cells)),
            (
                "warm_cell_wait_us".into(),
                histogram_json(&self.warm_us.lock().expect("metrics lock")),
            ),
            (
                "cold_cell_wait_us".into(),
                histogram_json(&self.cold_us.lock().expect("metrics lock")),
            ),
        ])
    }
}

fn histogram_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::Num(h.count as f64)),
        ("mean".into(), Json::Num(h.mean())),
        ("max".into(), Json::Num(h.max as f64)),
        (
            "log2_buckets".into(),
            Json::Arr(h.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_render_counters_and_histograms() {
        let m = ServeMetrics::default();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.observe_warm(Duration::from_micros(7));
        m.observe_cold(Duration::from_millis(2));
        let json = m.to_json();
        assert_eq!(json.get("requests"), Some(&Json::Num(3.0)));
        let warm = json.get("warm_cell_wait_us").expect("warm");
        assert_eq!(warm.get("count"), Some(&Json::Num(1.0)));
        assert_eq!(warm.get("max"), Some(&Json::Num(7.0)));
        let cold = json.get("cold_cell_wait_us").expect("cold");
        assert_eq!(cold.get("mean"), Some(&Json::Num(2000.0)));
    }
}
