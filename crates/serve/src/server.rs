//! The daemon itself: request routing, the `/run` streaming lifecycle,
//! and graceful shutdown.
//!
//! A `/run` request resolves to a registry experiment, enumerates its
//! grid cells, and serves each cell from the cheapest source available:
//! the on-disk cell cache (O(lookup)), another request's in-flight
//! computation (joined via the executor's dedup table), a concurrent
//! *process's* computation (waited out via the cache's advisory claim
//! files), or — last — this daemon's worker pool. Progress streams back
//! as NDJSON events (`plan`, `queued`, `running`, `done`, `error`,
//! `result`), each `done` carrying the cell's provenance.
//!
//! The final artifact is produced by calling the registry's own
//! [`ExperimentSpec::run`] over the now-warm cache — the exact code
//! path `zbp-cli experiment run` uses — so a daemon response is
//! bit-identical to a CLI run by construction, not by reimplementation.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zbp_sim::cache::CellCache;
use zbp_sim::experiments::ExperimentOptions;
use zbp_sim::registry::{self, ExperimentSpec};
use zbp_sim::session::SessionCell;
use zbp_support::json::Json;

use crate::executor::{provenance, Admission, Executor, Job, JobCell, SlotView};
use crate::http::{read_request, respond_json, respond_text, NdjsonStream, Request};
use crate::metrics::ServeMetrics;

/// How long a `/run` request waits for its cells when the client does
/// not say (`timeout_ms`).
pub const DEFAULT_RUN_TIMEOUT: Duration = Duration::from_secs(600);

/// Per-connection socket read timeout (header + body arrival).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed `/run` request body.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Registry experiment id (`fig2`, `table4`, ...).
    pub experiment: String,
    /// Per-workload dynamic-length cap override.
    pub len: Option<u64>,
    /// Workload synthesis seed override.
    pub seed: Option<u64>,
    /// Wait budget for the whole request, milliseconds.
    pub timeout_ms: Option<u64>,
}

impl RunRequest {
    /// Parses the `/run` body.
    ///
    /// # Errors
    ///
    /// On a non-object body, a missing/non-string `experiment`, or
    /// non-integer numeric fields.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        if !matches!(json, Json::Obj(_)) {
            return Err("request body must be a JSON object".into());
        }
        let experiment = match json.get("experiment") {
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err("\"experiment\" must be a string".into()),
            None => return Err("missing required field \"experiment\"".into()),
        };
        let uint = |key: &str| -> Result<Option<u64>, String> {
            match json.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
                Some(_) => Err(format!("\"{key}\" must be a non-negative integer")),
            }
        };
        Ok(Self {
            experiment,
            len: uint("len")?,
            seed: uint("seed")?,
            timeout_ms: uint("timeout_ms")?,
        })
    }
}

/// Everything the daemon shares across connections.
pub struct ServeState {
    /// Boot-time experiment options: the daemon's len/seed defaults,
    /// worker cap, compact/lane settings and warm trace store. `/run`
    /// may override `len`/`seed` per request.
    pub base: ExperimentOptions,
    /// The shared on-disk cell cache every request reads and warms.
    pub cache: Arc<CellCache>,
    /// Dedup table + worker pool for cold cells.
    pub executor: Executor,
    /// `/metrics` counters and latency histograms.
    pub metrics: Arc<ServeMetrics>,
}

impl ServeState {
    /// Builds the daemon state: a cache at `cache_dir` and a pool of
    /// `pool_workers` cell workers over `base`.
    pub fn new(
        base: ExperimentOptions,
        cache_dir: impl Into<PathBuf>,
        pool_workers: usize,
    ) -> Arc<Self> {
        // The replay fan-out inside each worker honours the same global
        // cap the CLI sets.
        zbp_sim::parallel::set_worker_cap(base.workers);
        let metrics = Arc::new(ServeMetrics::default());
        Arc::new(Self {
            base,
            cache: Arc::new(CellCache::at(cache_dir.into())),
            executor: Executor::new(pool_workers, Arc::clone(&metrics)),
            metrics,
        })
    }
}

/// The listening daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    active: Arc<AtomicU64>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` for tests).
    ///
    /// # Errors
    ///
    /// When the address cannot be bound.
    pub fn bind(addr: &str, state: Arc<ServeState>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { listener, state, active: Arc::new(AtomicU64::new(0)) })
    }

    /// The bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// When the socket's local address cannot be read.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` turns true, then drains gracefully:
    /// stops accepting, waits for every active connection to finish,
    /// and joins the worker pool (which completes all queued cells
    /// first). Returns only when the drain is complete.
    pub fn run(&self, shutdown: &AtomicBool) {
        self.listener.set_nonblocking(true).expect("nonblocking listener");
        while !shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let active = Arc::clone(&self.active);
                    active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_connection(&state, stream);
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        // Drain: connections first (they may still enqueue work), then
        // the worker pool (which finishes everything enqueued).
        while self.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.state.executor.drain();
    }
}

fn handle_connection(state: &Arc<ServeState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = respond_json(&mut stream, 400, &error_json(&e.to_string()));
            return;
        }
    };
    state.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let result = route(state, &request, &mut stream);
    if result.is_err() {
        // The client hung up mid-stream; nothing left to tell it. Any
        // cells already enqueued finish in the background and warm the
        // cache for the next request.
    }
}

fn route(
    state: &Arc<ServeState>,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/") => respond_json(stream, 200, &info_json(state)),
        ("GET", "/experiments") => respond_json(stream, 200, &experiments_json(state)),
        ("GET", "/metrics") => respond_json(stream, 200, &state.metrics.to_json()),
        ("POST", "/run") => handle_run(state, request, stream),
        ("GET" | "POST", _) => respond_text(stream, 404, "no such endpoint\n"),
        _ => respond_text(stream, 405, "method not allowed\n"),
    }
}

fn info_json(state: &Arc<ServeState>) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str("zbp-serve".into())),
        ("version".into(), Json::Str(env!("CARGO_PKG_VERSION").into())),
        ("experiments".into(), Json::Num(registry::all().len() as f64)),
        (
            "cache_dir".into(),
            match state.cache.dir() {
                Some(d) => Json::Str(d.display().to_string()),
                None => Json::Null,
            },
        ),
        (
            "endpoints".into(),
            Json::Arr(
                ["GET /", "GET /experiments", "GET /metrics", "POST /run"]
                    .iter()
                    .map(|e| Json::Str((*e).into()))
                    .collect(),
            ),
        ),
    ])
}

fn experiments_json(state: &Arc<ServeState>) -> Json {
    Json::Arr(
        registry::all()
            .iter()
            .map(|spec| {
                Json::Obj(vec![
                    ("id".into(), Json::Str(spec.id.into())),
                    ("title".into(), Json::Str(spec.title.into())),
                    ("description".into(), Json::Str(spec.description.into())),
                    (
                        "mode".into(),
                        Json::Str(
                            if spec.grid_session(&state.base).is_some() { "grid" } else { "whole" }
                                .into(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn error_json(message: &str) -> Json {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))])
}

fn handle_run(
    state: &Arc<ServeState>,
    request: &Request,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let run = match request.json_body().and_then(|j| RunRequest::from_json(&j)) {
        Ok(r) => r,
        Err(e) => {
            state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return respond_json(stream, 400, &error_json(&e));
        }
    };
    let Some(spec) = registry::find(&run.experiment) else {
        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let ids = registry::all().iter().map(|s| s.id);
        let mut msg = format!("no experiment named {:?}", run.experiment);
        if let Some(suggestion) = registry::closest(&run.experiment, ids) {
            msg.push_str(&format!(" (did you mean {suggestion:?}?)"));
        }
        return respond_json(stream, 404, &error_json(&msg));
    };
    state.metrics.active_requests.fetch_add(1, Ordering::Relaxed);
    let (outcome, started) = {
        let mut out = NdjsonStream::new(stream);
        let outcome = run_streaming(state, spec, &run, &mut |event| out.emit(event));
        (outcome, out.started())
    };
    state.metrics.active_requests.fetch_sub(1, Ordering::Relaxed);
    match outcome {
        Ok(()) => Ok(()),
        Err(RunError::Io(e)) => Err(e),
        Err(RunError::Request(msg)) => {
            // The per-cell `error` event already went out; close the
            // request with a summary (as a trailing event when the
            // stream started, as a status otherwise).
            let event = Json::Obj(vec![
                ("event".into(), Json::Str("error".into())),
                ("error".into(), Json::Str(msg)),
            ]);
            if started {
                let mut out = NdjsonStream::resumed(stream);
                out.emit(&event)
            } else {
                respond_json(stream, 500, &event)
            }
        }
    }
}

/// Why a `/run` could not complete.
#[derive(Debug)]
pub enum RunError {
    /// The connection failed (client hung up): nothing more to send.
    Io(std::io::Error),
    /// The request itself failed (timeout, failed cell): reported to
    /// the client as an `error` event or status.
    Request(String),
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io(e)
    }
}

fn cell_event(kind: &str, cell: &SessionCell, extra: &[(&str, Json)]) -> Json {
    let mut fields = vec![
        ("event".into(), Json::Str(kind.into())),
        ("workload".into(), Json::Str(cell.workload.clone())),
        ("config".into(), Json::Str(cell.config.clone())),
        ("row".into(), Json::Num(cell.row as f64)),
        ("col".into(), Json::Num(cell.col as f64)),
        ("cell".into(), Json::Str(cell.key.digest())),
    ];
    fields.extend(extra.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
    Json::Obj(fields)
}

/// Serves one `/run` request, emitting NDJSON progress events through
/// `emit`. Public (with a function sink rather than a socket) so the
/// bench harness and tests can drive the full request lifecycle
/// in-process.
///
/// # Errors
///
/// [`RunError::Io`] when the client connection fails mid-stream;
/// [`RunError::Request`] on timeout or a failed cell (already reported
/// to the client by the caller).
pub fn run_streaming(
    state: &Arc<ServeState>,
    spec: &ExperimentSpec,
    run: &RunRequest,
    emit: &mut dyn FnMut(&Json) -> std::io::Result<()>,
) -> Result<(), RunError> {
    let mut opts = state.base.clone();
    if run.len.is_some() {
        opts.len = run.len;
    }
    if let Some(seed) = run.seed {
        opts.seed = seed;
    }
    let timeout = run.timeout_ms.map_or(DEFAULT_RUN_TIMEOUT, Duration::from_millis);
    let deadline = Instant::now() + timeout;

    let Some(session) = spec.grid_session(&opts) else {
        // Stats/custom specs have no externally addressable grid: run
        // them whole on this connection thread (their cells still go
        // through the shared cache).
        emit(&Json::Obj(vec![
            ("event".into(), Json::Str("plan".into())),
            ("experiment".into(), Json::Str(spec.id.into())),
            ("mode".into(), Json::Str("whole".into())),
        ]))?;
        let result = spec.run(&opts, &state.cache);
        emit(&result_event(&result.artifact(), 0, 0, 0, 0, 0))?;
        return Ok(());
    };
    let session = Arc::new(session);
    let cells = session.cells();
    emit(&Json::Obj(vec![
        ("event".into(), Json::Str("plan".into())),
        ("experiment".into(), Json::Str(spec.id.into())),
        ("mode".into(), Json::Str("grid".into())),
        ("cells".into(), Json::Num(cells.len() as f64)),
        ("rows".into(), Json::Num(cells.iter().map(|c| c.row).max().map_or(0, |r| r + 1) as f64)),
    ]))?;
    state.metrics.cells_requested.fetch_add(cells.len() as u64, Ordering::Relaxed);

    // Phase 1: serve warm cells immediately; admit cold ones (owner or
    // join) and group owned cells into per-row lane-batched jobs.
    //
    // An owned cell's inflight entry is only ever removed by the worker
    // that resolves its slot, so every cell admitted as Owner MUST be
    // submitted — an emit failure (client hangup) stops the admission
    // loop but still flushes the jobs accumulated so far, otherwise the
    // admitted keys would wedge in the dedup table until restart.
    let mut hits = 0u64;
    let mut pending: Vec<(usize, Arc<crate::executor::CellSlot>, bool, Instant)> = Vec::new();
    let mut row_jobs: std::collections::BTreeMap<usize, Vec<JobCell>> =
        std::collections::BTreeMap::new();
    let mut hangup: Option<std::io::Error> = None;
    for (idx, cell) in cells.iter().enumerate() {
        let t0 = Instant::now();
        let event = if state.cache.load(&cell.key).is_some() {
            hits += 1;
            state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            state.metrics.observe_warm(t0.elapsed());
            cell_event("done", cell, &[("provenance", Json::Str(provenance::CACHE_HIT.into()))])
        } else {
            match state.executor.admit(&cell.key) {
                Admission::Owner(slot) => {
                    row_jobs.entry(cell.row).or_default().push(JobCell {
                        col: cell.col,
                        key: cell.key.clone(),
                        slot: Arc::clone(&slot),
                    });
                    pending.push((idx, slot, true, t0));
                    cell_event("queued", cell, &[])
                }
                Admission::Joined(slot) => {
                    state.metrics.dedup_joins.fetch_add(1, Ordering::Relaxed);
                    pending.push((idx, slot, false, t0));
                    cell_event("queued", cell, &[("joined", Json::Bool(true))])
                }
            }
        };
        if let Err(e) = emit(&event) {
            hangup = Some(e);
            break;
        }
    }
    for (row, job_cells) in row_jobs {
        state.executor.submit(Job {
            session: Arc::clone(&session),
            cache: Arc::clone(&state.cache),
            row,
            cells: job_cells,
        });
    }
    if let Some(e) = hangup {
        return Err(e.into());
    }

    // Phase 2: wait out the pending slots in grid order, streaming each
    // transition. A timeout abandons the *wait*, never the computation:
    // enqueued cells complete in the background and every store is
    // atomic, so the cache cannot hold a partial entry.
    let mut computed = 0u64;
    let mut dedup = 0u64;
    let mut claim_wait = 0u64;
    let mut failed: Option<String> = None;
    for (idx, slot, owner, t0) in pending {
        // `t0` is the cell's phase-1 admission time, so observe_cold
        // records wall-clock admission→done latency — comparable to the
        // bench's request-start-to-done figure — rather than the
        // incremental wait from when the stream loop reached the cell.
        let cell = &cells[idx];
        let mut view = slot.view();
        loop {
            match &view {
                SlotView::Queued => {}
                SlotView::Running => {
                    emit(&cell_event("running", cell, &[]))?;
                    // Fall through to wait for resolution without
                    // re-emitting on spurious wakeups.
                    match slot.wait_resolved(deadline) {
                        Some(v) => {
                            view = v;
                            continue;
                        }
                        None => {
                            return Err(timeout_error(state, emit, cell, timeout));
                        }
                    }
                }
                SlotView::Done(slot_provenance) => {
                    state.metrics.observe_cold(t0.elapsed());
                    let label = if owner { slot_provenance } else { provenance::DEDUP };
                    match label {
                        provenance::COMPUTED => computed += 1,
                        provenance::DEDUP => dedup += 1,
                        provenance::CLAIM_WAIT => claim_wait += 1,
                        _ => hits += 1,
                    }
                    emit(&cell_event("done", cell, &[("provenance", Json::Str(label.into()))]))?;
                    break;
                }
                SlotView::Failed(msg) => {
                    emit(&cell_event("error", cell, &[("error", Json::Str(msg.clone()))]))?;
                    failed = Some(format!("cell {} failed: {msg}", cell.key.digest()));
                    break;
                }
            }
            match slot.wait_change(&view, deadline) {
                Some(v) => view = v,
                None => return Err(timeout_error(state, emit, cell, timeout)),
            }
        }
        if failed.is_some() {
            break;
        }
    }
    if let Some(msg) = failed {
        return Err(RunError::Request(msg));
    }

    // Phase 3: assemble the artifact through the registry's own run
    // path over the now-warm cache — the exact code `zbp-cli experiment
    // run` executes, so the response is bit-identical to a CLI run.
    let result = spec.run(&opts, &state.cache);
    emit(&result_event(&result.artifact(), cells.len() as u64, hits, computed, dedup, claim_wait))?;
    Ok(())
}

fn timeout_error(
    state: &Arc<ServeState>,
    emit: &mut dyn FnMut(&Json) -> std::io::Result<()>,
    cell: &SessionCell,
    timeout: Duration,
) -> RunError {
    let msg = format!(
        "timed out after {}ms waiting for cell {} (computation continues in the background; \
         retry to pick up the cached result)",
        timeout.as_millis(),
        cell.key.digest()
    );
    state.metrics.errors.fetch_add(1, Ordering::Relaxed);
    let _ = emit(&cell_event("error", cell, &[("error", Json::Str(msg.clone()))]));
    RunError::Request(msg)
}

fn result_event(
    artifact: &Json,
    cells: u64,
    hits: u64,
    computed: u64,
    dedup: u64,
    claim_wait: u64,
) -> Json {
    Json::Obj(vec![
        ("event".into(), Json::Str("result".into())),
        (
            "served".into(),
            Json::Obj(vec![
                ("cells".into(), Json::Num(cells as f64)),
                ("cache_hits".into(), Json::Num(hits as f64)),
                ("computed".into(), Json::Num(computed as f64)),
                ("dedup".into(), Json::Num(dedup as f64)),
                ("claim_wait".into(), Json::Num(claim_wait as f64)),
            ]),
        ),
        ("artifact".into(), artifact.clone()),
    ])
}
