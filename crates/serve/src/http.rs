//! Minimal HTTP/1.1 plumbing for `zbp-serve`.
//!
//! The repository is dependency-free by design, so the daemon speaks
//! just enough HTTP itself: one request per connection (`Connection:
//! close` on every response), request line + headers + an optional
//! `Content-Length` body on the way in, and either a complete response
//! or a close-delimited NDJSON stream on the way out. That subset is
//! exactly what `curl`, CI smoke scripts and the bench harness need —
//! there is deliberately no keep-alive, chunked encoding or TLS.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use zbp_support::json::Json;

/// Cap on the request line + headers, bytes.
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Cap on a request body, bytes.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed incoming request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client already).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw body bytes (`Content-Length`-delimited; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// When the body is not valid UTF-8 JSON.
    pub fn json_body(&self) -> Result<Json, String> {
        let text =
            std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))?;
        Json::parse(text).map_err(|e| format!("body is not valid JSON: {}", e.0))
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// On malformed request framing, oversized head/body, or I/O errors
/// (including the stream's read timeout elapsing).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut head_budget = MAX_HEAD_BYTES;
    let line = read_line_capped(&mut reader, &mut head_budget)?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(bad_request("malformed request line"));
    };
    let method = method.to_string();
    // Strip any query string: the daemon routes on the path alone.
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length = 0usize;
    loop {
        let header = read_line_capped(&mut reader, &mut head_budget)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| bad_request("unparsable Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad_request("request body exceeds 1 MiB"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Reads one `\n`-terminated line, charging every byte against the
/// shared head `budget` — the check runs per buffered chunk, *before*
/// the chunk is kept, so a client streaming an endless newline-free
/// line can never make the daemon buffer more than the head cap. EOF
/// before a newline yields whatever arrived (the caller's parser
/// rejects incomplete heads).
fn read_line_capped(reader: &mut impl BufRead, budget: &mut usize) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            break;
        }
        let taken = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => pos + 1,
            None => available.len(),
        };
        if taken > *budget {
            return Err(bad_request("request head exceeds 64 KiB"));
        }
        let done = available[taken - 1] == b'\n';
        line.extend_from_slice(&available[..taken]);
        reader.consume(taken);
        *budget -= taken;
        if done {
            break;
        }
    }
    String::from_utf8(line).map_err(|_| bad_request("request head is not UTF-8"))
}

fn bad_request(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response and flushes it.
///
/// # Errors
///
/// On I/O errors writing to the stream.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    respond_raw(stream, status, "application/json", &body.render_pretty())
}

/// Writes a complete plain-text response and flushes it.
///
/// # Errors
///
/// On I/O errors writing to the stream.
pub fn respond_text(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond_raw(stream, status, "text/plain; charset=utf-8", body)
}

fn respond_raw(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A close-delimited NDJSON event stream: headers go out on the first
/// event, then one JSON object per line, flushed per event so clients
/// see progress live. The body ends when the connection closes
/// (`Connection: close`), which every HTTP/1.1 client accepts.
pub struct NdjsonStream<'a> {
    stream: &'a mut TcpStream,
    started: bool,
}

impl<'a> NdjsonStream<'a> {
    /// Wraps `stream`; nothing is written until the first event.
    pub fn new(stream: &'a mut TcpStream) -> Self {
        Self { stream, started: false }
    }

    /// Wraps a stream whose response head already went out (e.g. to
    /// append a trailing event after an earlier writer was dropped).
    pub fn resumed(stream: &'a mut TcpStream) -> Self {
        Self { stream, started: true }
    }

    /// Whether any event (and therefore the response head) went out —
    /// after that, errors can only be reported as stream events, not as
    /// an HTTP status.
    pub fn started(&self) -> bool {
        self.started
    }

    /// Writes one event line and flushes it.
    ///
    /// # Errors
    ///
    /// On I/O errors (e.g. the client hung up — the caller treats that
    /// as cancellation).
    pub fn emit(&mut self, event: &Json) -> io::Result<()> {
        if !self.started {
            self.started = true;
            self.stream.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
            )?;
        }
        self.stream.write_all(event.render().as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(&raw).expect("write");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn);
        writer.join().expect("writer");
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.json_body().expect("json").get("a"), Some(&Json::Num(1.0)));
    }

    #[test]
    fn strips_query_strings_and_tolerates_missing_body() {
        let req = roundtrip(b"GET /metrics?pretty=1 HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!("POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(roundtrip(raw.as_bytes()).is_err());
    }

    #[test]
    fn rejects_a_newline_free_flood_without_unbounded_buffering() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            // Stream several times the head cap with no newline; stop
            // when the server rejects the head and closes on us.
            let chunk = [b'A'; 8192];
            for _ in 0..(4 * MAX_HEAD_BYTES / chunk.len()) {
                if c.write_all(&chunk).is_err() {
                    break;
                }
            }
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let err = read_request(&mut conn).expect_err("endless request line must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        drop(conn);
        writer.join().expect("writer");
    }

    #[test]
    fn rejects_an_oversized_multi_header_head() {
        // Many newline-terminated headers must also stay under the
        // shared head budget.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        while raw.len() <= MAX_HEAD_BYTES {
            raw.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        raw.extend_from_slice(b"\r\n");
        assert!(roundtrip(&raw).is_err());
    }
}
