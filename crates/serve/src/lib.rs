//! # zbp-serve — simulation serving over the cell cache
//!
//! A long-lived daemon front end to the experiment registry: clients
//! POST an experiment request and the daemon serves its cells from the
//! cheapest source available — the content-addressed cell cache at
//! O(lookup), another client's identical in-flight computation (dedup
//! by cell key), a concurrent process's computation (the cache's
//! advisory claim files), or a bounded worker pool that computes cold
//! cells with the same lane-batched, trace-store-warm replay path the
//! CLI uses. Progress streams back as NDJSON events with per-cell
//! provenance; the final artifact is produced by the registry's own run
//! path over the warm cache, so a daemon response is bit-identical to a
//! `zbp-cli experiment run` of the same request.
//!
//! ```text
//! zbp-serve --addr 127.0.0.1:7878 --cache-dir results/cache
//! curl -s localhost:7878/run -d '{"experiment":"fig2","len":50000}'
//! ```
//!
//! The crate is dependency-free like the rest of the workspace: the
//! HTTP/1.1 subset in [`http`] is hand-rolled on `std::net`.

#![warn(missing_docs)]

pub mod executor;
pub mod http;
pub mod metrics;
pub mod server;

pub use executor::{Admission, CellSlot, Executor, Job, JobCell, SlotView};
pub use metrics::ServeMetrics;
pub use server::{run_streaming, RunError, RunRequest, ServeState, Server, DEFAULT_RUN_TIMEOUT};
