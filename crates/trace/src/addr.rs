//! Instruction addresses with z/Architecture big-endian bit numbering.
//!
//! The zEC12 is a big-endian 64-bit machine: **bit 0 is the most
//! significant bit and bit 63 the least significant**. The paper specifies
//! every table geometry in this numbering (e.g. "instruction address bits
//! 49:58 are used to index the BTB1"), so this module provides exact
//! helpers for those spans as well as the 4 KB block / 1 KB quartile /
//! 128 B sector decomposition used by the BTB2 search steering logic.

use std::fmt;

/// Bytes covered by one BTB row (all three levels): 32 bytes.
pub const LINE_BYTES: u64 = 32;
/// Bytes per steering sector: 128 bytes.
pub const SECTOR_BYTES: u64 = 128;
/// Bytes per steering quartile: 1 KB.
pub const QUARTILE_BYTES: u64 = 1024;
/// Bytes per bulk-transfer block: 4 KB.
pub const BLOCK_BYTES: u64 = 4096;
/// Sectors per 4 KB block.
pub const SECTORS_PER_BLOCK: u32 = 32;
/// Sectors per 1 KB quartile.
pub const SECTORS_PER_QUARTILE: u32 = 8;
/// Quartiles per 4 KB block.
pub const QUARTILES_PER_BLOCK: u32 = 4;

/// A 64-bit instruction address.
///
/// A thin newtype so that instruction addresses cannot be confused with
/// other integers flowing through the simulator.
///
/// ```
/// use zbp_trace::InstAddr;
/// let a = InstAddr::new(0x0001_2345);
/// assert_eq!(a.block(), 0x12);          // 4 KB block number
/// assert_eq!(a.sector_in_block(), 6);   // 128 B sector inside the block
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstAddr(u64);

impl InstAddr {
    /// Creates an address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Extracts bits `hi:lo` in IBM big-endian numbering (bit 0 = MSB).
    ///
    /// # Panics
    ///
    /// Panics if `hi > lo` (in IBM numbering the *high-order* bit has the
    /// *smaller* index) or `lo > 63`.
    pub fn ibm_bits(self, hi: u32, lo: u32) -> u64 {
        assert!(hi <= lo && lo <= 63, "invalid IBM bit span {hi}:{lo}");
        let width = lo - hi + 1;
        let shifted = self.0 >> (63 - lo);
        if width == 64 {
            shifted
        } else {
            shifted & ((1u64 << width) - 1)
        }
    }

    /// The 32-byte line number (address divided by [`LINE_BYTES`]).
    pub const fn line(self) -> u64 {
        self.0 / LINE_BYTES
    }

    /// Byte offset within the 32-byte line.
    pub const fn line_offset(self) -> u32 {
        (self.0 % LINE_BYTES) as u32
    }

    /// BTB1 row index: IBM bits 49:58 (1024 rows, 32 B per row).
    pub fn btb1_row(self) -> usize {
        self.ibm_bits(49, 58) as usize
    }

    /// BTBP row index: IBM bits 52:58 (128 rows, 32 B per row).
    pub fn btbp_row(self) -> usize {
        self.ibm_bits(52, 58) as usize
    }

    /// BTB2 row index: IBM bits 47:58 (4096 rows, 32 B per row).
    pub fn btb2_row(self) -> usize {
        self.ibm_bits(47, 58) as usize
    }

    /// The 4 KB block number (IBM bits 0:51).
    pub const fn block(self) -> u64 {
        self.0 / BLOCK_BYTES
    }

    /// First address of the containing 4 KB block.
    pub const fn block_base(self) -> InstAddr {
        InstAddr(self.0 & !(BLOCK_BYTES - 1))
    }

    /// Byte offset within the 4 KB block.
    pub const fn block_offset(self) -> u32 {
        (self.0 % BLOCK_BYTES) as u32
    }

    /// 128 B sector index within the 4 KB block (0..32).
    pub const fn sector_in_block(self) -> u32 {
        ((self.0 % BLOCK_BYTES) / SECTOR_BYTES) as u32
    }

    /// 1 KB quartile index within the 4 KB block (0..4).
    pub const fn quartile(self) -> u32 {
        ((self.0 % BLOCK_BYTES) / QUARTILE_BYTES) as u32
    }

    /// Sector index within the quartile (0..8).
    pub const fn sector_in_quartile(self) -> u32 {
        ((self.0 % QUARTILE_BYTES) / SECTOR_BYTES) as u32
    }

    /// Address advanced by `bytes`.
    #[must_use]
    pub const fn add(self, bytes: u64) -> InstAddr {
        InstAddr(self.0.wrapping_add(bytes))
    }

    /// Address aligned down to its 32-byte line start.
    #[must_use]
    pub const fn line_base(self) -> InstAddr {
        InstAddr(self.0 & !(LINE_BYTES - 1))
    }

    /// Whether two addresses fall in the same 4 KB block.
    pub const fn same_block(self, other: InstAddr) -> bool {
        self.block() == other.block()
    }
}

impl fmt::Display for InstAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for InstAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for InstAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for InstAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<InstAddr> for u64 {
    fn from(a: InstAddr) -> Self {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibm_bit_numbering_matches_paper_spans() {
        // Bits 49:58 select a 10-bit field whose LSB weight is 2^5 = 32 B.
        let a = InstAddr::new(0b11_1111_1111 << 5);
        assert_eq!(a.btb1_row(), 0x3FF);
        // Bits 52:58: 7-bit field, same 32 B granularity.
        let b = InstAddr::new(0x7F << 5);
        assert_eq!(b.btbp_row(), 0x7F);
        // Bits 47:58: 12-bit field.
        let c = InstAddr::new(0xFFF << 5);
        assert_eq!(c.btb2_row(), 0xFFF);
    }

    #[test]
    fn row_indices_change_every_32_bytes() {
        let a = InstAddr::new(0x1000);
        let b = a.add(31);
        let c = a.add(32);
        assert_eq!(a.btb1_row(), b.btb1_row());
        assert_ne!(a.btb1_row(), c.btb1_row());
        assert_eq!(a.btbp_row(), b.btbp_row());
        assert_ne!(a.btbp_row(), c.btbp_row());
        assert_eq!(a.btb2_row(), b.btb2_row());
        assert_ne!(a.btb2_row(), c.btb2_row());
    }

    #[test]
    fn btb1_row_wraps_every_32kb() {
        // 1024 rows x 32 B = 32 KB of coverage before aliasing.
        let a = InstAddr::new(0x4_0000);
        let b = a.add(32 * 1024);
        assert_eq!(a.btb1_row(), b.btb1_row());
        assert_ne!(a.btb1_row(), a.add(32 * 512).btb1_row());
    }

    #[test]
    fn btb2_row_wraps_every_128kb() {
        let a = InstAddr::new(0x10_0000);
        assert_eq!(a.btb2_row(), a.add(4096 * 32).btb2_row());
    }

    #[test]
    fn block_sector_quartile_decomposition() {
        let a = InstAddr::new(3 * BLOCK_BYTES + 2 * QUARTILE_BYTES + 5 * SECTOR_BYTES + 17);
        assert_eq!(a.block(), 3);
        assert_eq!(a.quartile(), 2);
        assert_eq!(a.sector_in_quartile(), 5);
        assert_eq!(a.sector_in_block(), 2 * SECTORS_PER_QUARTILE + 5);
        assert_eq!(a.block_offset(), (2 * QUARTILE_BYTES + 5 * SECTOR_BYTES + 17) as u32);
        assert_eq!(a.block_base().raw(), 3 * BLOCK_BYTES);
    }

    #[test]
    fn line_helpers() {
        let a = InstAddr::new(0x1234);
        assert_eq!(a.line(), 0x1234 / 32);
        assert_eq!(a.line_offset(), (0x1234 % 32) as u32);
        assert_eq!(a.line_base().raw(), 0x1234 & !31);
    }

    #[test]
    fn same_block_detection() {
        let a = InstAddr::new(0x2000);
        assert!(a.same_block(a.add(4095)));
        assert!(!a.same_block(a.add(4096)));
    }

    #[test]
    fn display_formats_hex() {
        let a = InstAddr::new(0xAB);
        assert_eq!(a.to_string(), "0x00000000000000ab");
        assert_eq!(format!("{a:x}"), "ab");
        assert_eq!(format!("{a:X}"), "AB");
    }

    #[test]
    fn conversions() {
        let a: InstAddr = 5u64.into();
        let r: u64 = a.into();
        assert_eq!(r, 5);
    }

    #[test]
    #[should_panic(expected = "invalid IBM bit span")]
    fn ibm_bits_rejects_reversed_span() {
        InstAddr::new(0).ibm_bits(58, 49);
    }

    #[test]
    fn ibm_bits_full_width() {
        let a = InstAddr::new(u64::MAX);
        assert_eq!(a.ibm_bits(0, 63), u64::MAX);
        assert_eq!(a.ibm_bits(63, 63), 1);
        assert_eq!(a.ibm_bits(0, 0), 1);
    }
}
