//! Time-sliced workload mixing.
//!
//! The paper's trace 5 ("Z/OS LSPR WASDB+CBW2") is *a mix of two of the
//! LSPR workloads time sliced on one processor*, and the hardware Web
//! CICS/DB2 measurement ran on 4 cores. Both are modelled here by
//! interleaving several independent [`GenTrace`] walks in fixed-length
//! slices: each context switch confronts the predictor with a working set
//! it has not seen for a full round of slices.

use crate::gen::walker::Walker;
use crate::gen::GenTrace;
use crate::{Trace, TraceInstr};

/// A trace interleaving several sub-traces in round-robin time slices.
#[derive(Debug, Clone)]
pub struct MixTrace {
    name: String,
    parts: Vec<GenTrace>,
    slice_len: u64,
    total_len: u64,
}

impl MixTrace {
    /// Creates a time-sliced mix.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or `slice_len` is zero.
    pub fn new(
        name: impl Into<String>,
        parts: Vec<GenTrace>,
        slice_len: u64,
        total_len: u64,
    ) -> Self {
        assert!(!parts.is_empty(), "a mix needs at least one part");
        assert!(slice_len > 0, "slice length must be positive");
        Self { name: name.into(), parts, slice_len, total_len }
    }

    /// The sub-traces being mixed.
    pub fn parts(&self) -> &[GenTrace] {
        &self.parts
    }

    /// Instructions per time slice.
    pub fn slice_len(&self) -> u64 {
        self.slice_len
    }

    /// Returns the same mix with a different total length.
    #[must_use]
    pub fn with_len(mut self, len: u64) -> Self {
        self.total_len = len;
        self
    }
}

impl Trace for MixTrace {
    type Iter<'a> = MixIter<'a>;

    fn iter(&self) -> Self::Iter<'_> {
        // Sub-walkers are unbounded; the mix applies the global cap so a
        // slice can resume exactly where the previous one stopped.
        let walkers =
            self.parts.iter().map(|p| Walker::new(p.program(), p.walk_seed(), u64::MAX)).collect();
        MixIter {
            walkers,
            idx: 0,
            in_slice: 0,
            slice_len: self.slice_len,
            remaining: self.total_len,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> u64 {
        self.total_len
    }
}

/// Iterator over a [`MixTrace`].
#[derive(Debug, Clone)]
pub struct MixIter<'a> {
    walkers: Vec<Walker<'a>>,
    idx: usize,
    in_slice: u64,
    slice_len: u64,
    remaining: u64,
}

impl Iterator for MixIter<'_> {
    type Item = TraceInstr;

    fn next(&mut self) -> Option<TraceInstr> {
        if self.remaining == 0 {
            return None;
        }
        let instr = self.walkers[self.idx].next()?;
        self.remaining -= 1;
        self.in_slice += 1;
        if self.in_slice >= self.slice_len {
            self.in_slice = 0;
            self.idx = (self.idx + 1) % self.walkers.len();
        }
        Some(instr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for MixIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::layout::LayoutParams;

    fn part(base: u64, seed: u64) -> GenTrace {
        let params = LayoutParams { base_addr: base, ..LayoutParams::small_test() };
        GenTrace::new("part", &params, seed, 1_000)
    }

    #[test]
    fn mix_interleaves_address_spaces() {
        let a = part(0x0100_0000, 1);
        let b = part(0x4000_0000, 2);
        let mix = MixTrace::new("m", vec![a, b], 100, 1_000);
        let instrs: Vec<_> = mix.iter().collect();
        assert_eq!(instrs.len(), 1_000);
        // First slice entirely from part A's space, second from part B's.
        assert!(instrs[..100].iter().all(|i| i.addr.raw() < 0x4000_0000));
        assert!(instrs[100..200].iter().all(|i| i.addr.raw() >= 0x4000_0000));
        assert!(instrs[200..300].iter().all(|i| i.addr.raw() < 0x4000_0000));
    }

    #[test]
    fn slices_resume_where_they_stopped() {
        let a = part(0x0100_0000, 3);
        let solo: Vec<_> = Walker::new(a.program(), a.walk_seed(), 200).collect();
        let mix = MixTrace::new("m", vec![a, part(0x4000_0000, 4)], 100, 400);
        let mixed: Vec<_> = mix.iter().collect();
        // Slice 0 (0..100) and slice 2 (200..300) together are the first
        // 200 instructions of part A run alone.
        assert_eq!(&mixed[..100], &solo[..100]);
        assert_eq!(&mixed[200..300], &solo[100..200]);
    }

    #[test]
    fn mix_is_deterministic() {
        let mix = MixTrace::new("m", vec![part(0x0100_0000, 5), part(0x4000_0000, 6)], 64, 500);
        let a: Vec<_> = mix.iter().collect();
        let b: Vec<_> = mix.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_mix_rejected() {
        MixTrace::new("m", vec![], 10, 10);
    }

    #[test]
    #[should_panic(expected = "slice length")]
    fn zero_slice_rejected() {
        MixTrace::new("m", vec![part(0x0100_0000, 7)], 0, 10);
    }
}
