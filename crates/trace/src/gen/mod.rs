//! Synthetic workload generation.
//!
//! The paper's 13 evaluation traces (Table 4) are proprietary IBM LSPR /
//! middleware traces. This module synthesizes workloads that reproduce the
//! *published properties that drive the studied mechanism*:
//!
//! * the number of unique branch instruction addresses (the branch-site
//!   footprint that overwhelms the 4 k-entry BTB1),
//! * the number of unique ever-taken branch addresses,
//! * z/Architecture instruction lengths (2/4/6 bytes),
//! * code structured as functions and basic blocks over 4 KB pages (the
//!   granularity of the BTB2 bulk transfer and its steering table),
//! * loops, calls/returns, biased and pattern-correlated conditionals,
//!   polymorphic indirect branches,
//! * phased working sets, so previously-learned code is re-entered after
//!   its branches were evicted from the first level — the case the BTB2
//!   exists to accelerate.
//!
//! Generation is split into a static *layout* ([`layout::Program`]) and a
//! dynamic *walk* ([`walker::Walker`]) so that one workload can be replayed
//! identically across predictor configurations.

pub mod behavior;
pub mod layout;
pub mod mix;
pub mod walker;

use crate::{Trace, TraceInstr};
use layout::{LayoutParams, Program};
use std::sync::Arc;
use walker::Walker;

/// A generated, re-runnable workload trace.
///
/// Cheap to clone (the static program image is shared). Every call to
/// [`Trace::iter`] replays the identical dynamic instruction stream.
#[derive(Debug, Clone)]
pub struct GenTrace {
    name: String,
    program: Arc<Program>,
    seed: u64,
    len: u64,
}

impl GenTrace {
    /// Builds a workload from layout parameters.
    ///
    /// `seed` drives both the static layout and the dynamic walk; equal
    /// seeds and parameters produce identical traces.
    pub fn new(name: impl Into<String>, params: &LayoutParams, seed: u64, len: u64) -> Self {
        let program = Arc::new(Program::generate(params, seed ^ 0x5EED_1A70_u64));
        Self { name: name.into(), program, seed, len }
    }

    /// Builds a workload around an existing program image.
    pub fn with_program(
        name: impl Into<String>,
        program: Arc<Program>,
        seed: u64,
        len: u64,
    ) -> Self {
        Self { name: name.into(), program, seed, len }
    }

    /// Returns the same trace with a different dynamic length.
    #[must_use]
    pub fn with_len(mut self, len: u64) -> Self {
        self.len = len;
        self
    }

    /// Returns the same trace with a different walk seed (same code image,
    /// different dynamic behaviour).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The static program image.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The dynamic-walk seed (used by [`mix::MixTrace`] to construct
    /// unbounded sub-walkers over the same program).
    pub fn walk_seed(&self) -> u64 {
        self.seed
    }
}

impl Trace for GenTrace {
    type Iter<'a> = Walker<'a>;

    fn iter(&self) -> Self::Iter<'_> {
        Walker::new(&self.program, self.seed, self.len)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// Convenience: collect the first `n` instructions of any trace.
pub fn take_vec<T: Trace>(trace: &T, n: usize) -> Vec<TraceInstr> {
    trace.iter().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn small_params() -> LayoutParams {
        LayoutParams::small_test()
    }

    #[test]
    fn gen_trace_is_deterministic() {
        let t = GenTrace::new("t", &small_params(), 42, 5_000);
        let a: Vec<_> = t.iter().collect();
        let b: Vec<_> = t.iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn different_seeds_differ() {
        let params = small_params();
        let t1 = GenTrace::new("t", &params, 1, 2_000);
        let t2 = GenTrace::new("t", &params, 2, 2_000);
        let a: Vec<_> = t1.iter().collect();
        let b: Vec<_> = t2.iter().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn with_len_changes_only_length() {
        let t = GenTrace::new("t", &small_params(), 42, 1_000);
        let longer = t.clone().with_len(2_000);
        let a: Vec<_> = t.iter().collect();
        let b: Vec<_> = longer.iter().take(1_000).collect();
        assert_eq!(a, b, "prefix must be identical");
        assert_eq!(longer.len(), 2_000);
    }

    #[test]
    fn instruction_lengths_are_z_like() {
        let t = GenTrace::new("t", &small_params(), 7, 3_000);
        for i in t.iter() {
            assert!(matches!(i.len, 2 | 4 | 6), "bad length {}", i.len);
            assert_eq!(i.addr.raw() % 2, 0, "z instructions are halfword aligned");
        }
    }

    #[test]
    fn control_flow_is_consistent() {
        // Every instruction must start where the previous one said the
        // stream goes next.
        let t = GenTrace::new("t", &small_params(), 9, 5_000);
        let mut prev: Option<TraceInstr> = None;
        for i in t.iter() {
            if let Some(p) = prev {
                assert_eq!(p.next_addr(), i.addr, "discontinuity after {:?} -> {:?}", p, i);
            }
            prev = Some(i);
        }
    }

    #[test]
    fn take_vec_takes() {
        let t = GenTrace::new("t", &small_params(), 3, 1_000);
        assert_eq!(take_vec(&t, 10).len(), 10);
    }
}
