//! Dynamic control-flow walk over a synthesized program image.
//!
//! The walker executes the static [`Program`] the way a processor trace
//! would record it: block by block, resolving every branch with its
//! assigned behaviour, maintaining a call stack, and shifting the active
//! *working set* (a union of contiguous function-id ranges) every
//! `phase_len` instructions. Working-set shifts are what re-enter
//! previously learned but since-evicted code — the situation the BTB2 bulk
//! preload exists to accelerate.

use crate::addr::InstAddr;
use crate::branch::{BranchKind, BranchRec};
use crate::gen::behavior::SiteState;
use crate::gen::layout::{FuncId, Program, Terminator};
use crate::instr::TraceInstr;
use zbp_support::rng::SmallRng;

/// Maximum call depth before calls stop pushing return continuations.
const MAX_CALL_DEPTH: usize = 48;

/// Deterministic instruction-stream iterator over a [`Program`].
///
/// Created by [`Walker::new`]; equal `(program, seed, limit)` triples
/// produce identical streams.
#[derive(Debug, Clone)]
pub struct Walker<'p> {
    program: &'p Program,
    rng: SmallRng,
    limit: u64,
    emitted: u64,
    site_state: Vec<SiteState>,
    call_stack: Vec<(FuncId, u32)>,
    cur_func: FuncId,
    cur_block: u32,
    cur_instr: usize,
    cur_addr: InstAddr,
    phase: PhaseState,
    /// Next instruction count at which a return is forced to dispatch
    /// (models OS time slicing; keeps the walk from being trapped inside
    /// one call-graph neighbourhood).
    next_forced_dispatch: u64,
    dispatch_interval: u64,
}

/// Active working set: a union of contiguous function-id ranges, plus a
/// small *hot set* dispatched to with high probability — the 90/10
/// temporal locality of real commercial workloads. Hot functions promote
/// their branches from the BTBP into the BTB1; the slowly rotating range
/// tail is what generates first-level capacity traffic.
#[derive(Debug, Clone)]
struct PhaseState {
    ranges: Vec<(u32, u32)>,
    hot: Vec<FuncId>,
    hot_prob: f64,
    until: u64,
    phase_len: u64,
    range_size: u32,
    /// Round-robin cursor over the working-set ranges: cold dispatches
    /// cycle the whole active set in order, so every active function has
    /// the same (large) reuse distance — beyond the BTB1's reach and
    /// within the BTB2's, which is the access pattern that makes
    /// first-level capacity misses recoverable by a second level.
    cursor: u32,
    /// Sequential rotation cursor for phase-shift range refreshes.
    rotation: u32,
    /// Phase shifts so far (selects the round-robin victim range).
    shifts: u32,
    /// Transaction burstiness: a cold function is re-dispatched a few
    /// times back-to-back. The burst gives its surprise-installed
    /// branches a BTBP prediction — and therefore a BTB1 promotion —
    /// before the round moves on; without it, single-shot visits die in
    /// the BTBP and not even an infinitely large BTB1 could help.
    burst_func: FuncId,
    burst_remaining: u8,
}

impl PhaseState {
    fn new(program: &Program, rng: &mut SmallRng) -> Self {
        let n = program.n_functions().max(1);
        let n_ranges = program.phase_ranges.clamp(1, 16);
        // The active set covers ~two thirds of the program: far beyond
        // the BTB1's reach for the paper's workloads while the phase
        // rotation still sweeps the whole footprint over a run.
        let range_size = (2 * n / (n_ranges * 3).max(1)).clamp(4, n);
        // Ranges laid end-to-end from a random phase origin; refreshes
        // rotate sequentially so coverage is exhaustive, not lottery.
        let origin = rng.random_range(0..n);
        let span = n.saturating_sub(range_size).max(1);
        let mut ranges = Vec::with_capacity(n_ranges as usize);
        for i in 0..n_ranges {
            let start = (origin + i * range_size) % span;
            ranges.push((start, (start + range_size).min(n)));
        }
        let mut state = Self {
            ranges,
            hot: Vec::new(),
            hot_prob: program.hot_dispatch_prob.clamp(0.0, 0.95),
            until: program.phase_len.max(1),
            phase_len: program.phase_len.max(1),
            range_size,
            cursor: 0,
            rotation: (origin + n_ranges * range_size) % span,
            shifts: 0,
            burst_func: 0,
            burst_remaining: 0,
        };
        let hot_size = program.hot_funcs.clamp(1, n) as usize;
        for _ in 0..hot_size {
            let f = state.dispatch_cold(rng);
            state.hot.push(f);
        }
        state
    }

    /// Total function slots in the active ranges.
    fn active_slots(&self) -> u32 {
        self.ranges.iter().map(|(lo, hi)| hi - lo).sum::<u32>().max(1)
    }

    /// Function at a slot index within the concatenated ranges.
    fn slot_func(&self, slot: u32) -> FuncId {
        let mut s = slot;
        for &(lo, hi) in &self.ranges {
            let len = hi - lo;
            if s < len {
                return lo + s;
            }
            s -= len;
        }
        self.ranges[0].0
    }

    /// Called once per emitted instruction; shifts one range per phase
    /// and refreshes part of the hot set from the new working set.
    /// Victims rotate oldest-first so every range gets the same
    /// residency (`phase_ranges` phases) — random victims would leave
    /// some ranges under-cycled and the footprint under-covered.
    fn tick(&mut self, emitted: u64, n_funcs: u32, rng: &mut SmallRng) {
        if emitted >= self.until {
            self.until = emitted + self.phase_len;
            let victim = (self.shifts as usize) % self.ranges.len();
            self.shifts = self.shifts.wrapping_add(1);
            let span = n_funcs.saturating_sub(self.range_size).max(1);
            let start = self.rotation % span;
            self.rotation = (self.rotation + self.range_size) % span;
            self.ranges[victim] = (start, (start + self.range_size).min(n_funcs));
            // A third of the hot set churns with the phase.
            let churn = (self.hot.len() / 3).max(1);
            for _ in 0..churn {
                let slot = rng.random_range(0..self.hot.len());
                self.hot[slot] = self.dispatch_cold(rng);
            }
        }
    }

    /// Picks a function uniformly from the working-set ranges (hot-set
    /// seeding and churn).
    fn dispatch_cold(&self, rng: &mut SmallRng) -> FuncId {
        let (lo, hi) = self.ranges[rng.random_range(0..self.ranges.len())];
        rng.random_range(lo..hi.max(lo + 1))
    }

    /// Picks a dispatch target: an ongoing cold burst continues, hot
    /// functions interleave, and new cold bursts advance the round-robin
    /// cycle over the active working set.
    fn dispatch(&mut self, rng: &mut SmallRng) -> FuncId {
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            return self.burst_func;
        }
        if !self.hot.is_empty() && rng.random_bool(self.hot_prob) {
            self.hot[rng.random_range(0..self.hot.len())]
        } else {
            let slots = self.active_slots();
            let f = self.slot_func(self.cursor % slots);
            self.cursor = (self.cursor + 1) % slots;
            self.burst_func = f;
            self.burst_remaining = 1;
            f
        }
    }
}

impl<'p> Walker<'p> {
    /// Creates a walker producing `limit` instructions from `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program has no functions.
    pub fn new(program: &'p Program, seed: u64, limit: u64) -> Self {
        assert!(!program.functions.is_empty(), "program must contain functions");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD157_A7C4_u64);
        let mut phase = PhaseState::new(program, &mut rng);
        let start_func = phase.dispatch(&mut rng);
        let cur_addr = program.functions[start_func as usize].entry;
        let dispatch_interval = (program.phase_len / 24).clamp(1_500, 25_000);
        Self {
            program,
            rng,
            limit,
            emitted: 0,
            site_state: vec![SiteState::default(); program.n_state_sites as usize],
            call_stack: Vec::with_capacity(MAX_CALL_DEPTH),
            cur_func: start_func,
            cur_block: 0,
            cur_instr: 0,
            cur_addr,
            phase,
            next_forced_dispatch: dispatch_interval,
            dispatch_interval,
        }
    }

    fn enter_block(&mut self, func: FuncId, block: u32) {
        self.cur_func = func;
        self.cur_block = block;
        self.cur_instr = 0;
        self.cur_addr = self.program.functions[func as usize].blocks[block as usize].start;
    }

    fn block_start(&self, func: FuncId, block: u32) -> InstAddr {
        self.program.functions[func as usize].blocks[block as usize].start
    }
}

impl Iterator for Walker<'_> {
    type Item = TraceInstr;

    fn next(&mut self) -> Option<TraceInstr> {
        if self.emitted >= self.limit {
            return None;
        }
        loop {
            let func = &self.program.functions[self.cur_func as usize];
            let block = &func.blocks[self.cur_block as usize];
            if self.cur_instr < block.instr_lens.len() {
                let len = block.instr_lens[self.cur_instr];
                let instr = TraceInstr::plain(self.cur_addr, len);
                self.cur_instr += 1;
                self.cur_addr = self.cur_addr.add(len as u64);
                self.emitted += 1;
                self.phase.tick(self.emitted, self.program.n_functions(), &mut self.rng);
                return Some(instr);
            }
            // At the terminator.
            let term_addr = block.term_addr();
            let n_blocks = func.blocks.len() as u32;
            let cur_func = self.cur_func;
            let cur_block = self.cur_block;
            let rec: Option<(u8, BranchRec)> = match &block.term {
                Terminator::FallThrough => {
                    debug_assert!(cur_block + 1 < n_blocks);
                    self.enter_block(cur_func, cur_block + 1);
                    continue;
                }
                Terminator::Cond { site, len, target_block, behavior } => {
                    let taken =
                        behavior.resolve(&mut self.site_state[*site as usize], &mut self.rng);
                    let target = self.block_start(cur_func, *target_block);
                    if taken {
                        self.enter_block(cur_func, *target_block);
                    } else {
                        self.enter_block(cur_func, cur_block + 1);
                    }
                    Some((*len, BranchRec { kind: BranchKind::Conditional, taken, target }))
                }
                Terminator::Jump { len, target_block } => {
                    let target = self.block_start(cur_func, *target_block);
                    self.enter_block(cur_func, *target_block);
                    Some((*len, BranchRec::taken(BranchKind::Unconditional, target)))
                }
                Terminator::Call { len, callee } => {
                    let target = if self.call_stack.len() < MAX_CALL_DEPTH {
                        self.call_stack.push((cur_func, cur_block + 1));
                        self.enter_block(*callee, 0);
                        self.program.functions[*callee as usize].entry
                    } else {
                        // At the depth cap: abbreviate the callee by
                        // entering its final block, so its imminent return
                        // unwinds the stack. Without this, static call
                        // cycles (A calls B calls A) would never reach a
                        // return instruction again.
                        let last = self.program.functions[*callee as usize].blocks.len() as u32 - 1;
                        self.enter_block(*callee, last);
                        self.cur_addr
                    };
                    Some((*len, BranchRec::taken(BranchKind::Call, target)))
                }
                Terminator::Return { len } => {
                    let forced = self.emitted >= self.next_forced_dispatch;
                    let (f, b) = if forced {
                        // Time-slice boundary: abandon the current call
                        // chain and dispatch into the working set.
                        self.call_stack.clear();
                        self.next_forced_dispatch = self.emitted + self.dispatch_interval;
                        (self.phase.dispatch(&mut self.rng), 0)
                    } else {
                        match self.call_stack.pop() {
                            Some(cont) => cont,
                            None => (self.phase.dispatch(&mut self.rng), 0),
                        }
                    };
                    let target = self.block_start(f, b);
                    self.enter_block(f, b);
                    Some((*len, BranchRec::taken(BranchKind::Return, target)))
                }
                Terminator::Indirect { site, len, targets, behavior } => {
                    let idx = behavior.choose(
                        targets.len(),
                        &mut self.site_state[*site as usize],
                        &mut self.rng,
                    );
                    let tb = targets[idx];
                    let target = self.block_start(cur_func, tb);
                    self.enter_block(cur_func, tb);
                    Some((*len, BranchRec::taken(BranchKind::Indirect, target)))
                }
            };
            let (len, rec) = rec.expect("all non-fallthrough terminators emit");
            self.emitted += 1;
            self.phase.tick(self.emitted, self.program.n_functions(), &mut self.rng);
            return Some(TraceInstr::branch(term_addr, len, rec));
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.limit - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Walker<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::layout::LayoutParams;
    use std::collections::HashSet;

    fn program() -> Program {
        Program::generate(&LayoutParams::small_test(), 77)
    }

    #[test]
    fn walker_emits_exactly_limit() {
        let p = program();
        let w = Walker::new(&p, 1, 1234);
        assert_eq!(w.count(), 1234);
    }

    #[test]
    fn walker_is_deterministic() {
        let p = program();
        let a: Vec<_> = Walker::new(&p, 5, 3000).collect();
        let b: Vec<_> = Walker::new(&p, 5, 3000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn size_hint_is_exact() {
        let p = program();
        let mut w = Walker::new(&p, 5, 100);
        assert_eq!(w.size_hint(), (100, Some(100)));
        w.next();
        assert_eq!(w.size_hint(), (99, Some(99)));
    }

    #[test]
    fn branch_addresses_come_from_program_sites() {
        let p = program();
        let sites: HashSet<u64> = p.branch_site_addrs().map(|a| a.raw()).collect();
        for i in Walker::new(&p, 2, 5000) {
            if i.is_branch() {
                assert!(sites.contains(&i.addr.raw()), "unknown branch site {:?}", i.addr);
            }
        }
    }

    #[test]
    fn calls_and_returns_balance_roughly() {
        let p = program();
        let mut calls = 0i64;
        let mut rets = 0i64;
        for i in Walker::new(&p, 3, 50_000) {
            match i.branch_kind() {
                Some(BranchKind::Call) => calls += 1,
                Some(BranchKind::Return) => rets += 1,
                _ => {}
            }
        }
        assert!(calls > 0 && rets > 0);
        // Forced dispatches clear the stack, so returns lag calls, but the
        // two must stay the same order of magnitude.
        assert!(rets * 4 > calls, "rets={rets} calls={calls}");
    }

    #[test]
    fn working_set_shifts_touch_many_functions() {
        let params =
            LayoutParams { target_sites: 3000, phase_len: 15_000, ..LayoutParams::small_test() };
        let p = Program::generate(&params, 9);
        let entries: HashSet<u64> = p.functions.iter().map(|f| f.entry.raw()).collect();
        let mut seen = HashSet::new();
        for i in Walker::new(&p, 4, 400_000) {
            if entries.contains(&i.addr.raw()) {
                seen.insert(i.addr.raw());
            }
        }
        // Over many phases the walk should reach a large share of functions.
        assert!(
            seen.len() * 2 > entries.len(),
            "only {} of {} functions visited",
            seen.len(),
            entries.len()
        );
    }

    #[test]
    fn taken_branch_density_is_realistic() {
        let p = program();
        let n = 50_000u64;
        let mut branches = 0u64;
        let mut taken = 0u64;
        for i in Walker::new(&p, 6, n) {
            if i.is_branch() {
                branches += 1;
                if i.is_taken_branch() {
                    taken += 1;
                }
            }
        }
        let bf = branches as f64 / n as f64;
        assert!((0.10..0.45).contains(&bf), "branch fraction {bf}");
        assert!(taken * 3 > branches, "too few taken branches");
    }
}
