//! Static program image synthesis.
//!
//! Generates a code layout — functions made of basic blocks, placed over
//! 4 KB pages in one address space — whose *reachable branch-site count*
//! and *ever-taken site fraction* match a workload target (the two columns
//! of the paper's Table 4). The dynamic walk over this image is in
//! [`super::walker`].

use crate::addr::InstAddr;
use crate::gen::behavior::{CondBehavior, IndirectBehavior};
use zbp_support::rng::SmallRng;

/// Identifier of a function within a [`Program`].
pub type FuncId = u32;

/// Identifier carrying per-site dynamic state (conditionals and indirects).
pub type SiteId = u32;

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// No branch: execution continues into the next block. Creates the
    /// branch-free stretches that make perceived BTB1 misses speculative
    /// (the paper's "long unrolled loop" false-miss case).
    FallThrough,
    /// Conditional branch to `target_block` in the same function.
    Cond {
        /// Dynamic-state id.
        site: SiteId,
        /// Instruction length in bytes.
        len: u8,
        /// Target block index within the same function.
        target_block: u32,
        /// Direction behaviour.
        behavior: CondBehavior,
    },
    /// Unconditional forward jump within the function.
    Jump {
        /// Instruction length in bytes.
        len: u8,
        /// Target block index within the same function.
        target_block: u32,
    },
    /// Call to another function; execution resumes at the next block.
    Call {
        /// Instruction length in bytes.
        len: u8,
        /// Callee function.
        callee: FuncId,
    },
    /// Return to the caller (or to the dispatcher when the stack is empty).
    Return {
        /// Instruction length in bytes.
        len: u8,
    },
    /// Indirect branch over a set of same-function target blocks.
    Indirect {
        /// Dynamic-state id.
        site: SiteId,
        /// Instruction length in bytes.
        len: u8,
        /// Candidate target block indices.
        targets: Vec<u32>,
        /// Target-selection behaviour.
        behavior: IndirectBehavior,
    },
}

impl Terminator {
    /// Whether this terminator is a branch instruction (everything except
    /// a fall-through).
    pub fn is_branch(&self) -> bool {
        !matches!(self, Terminator::FallThrough)
    }

    /// Whether execution can continue into the next sequential block.
    pub fn can_fall_through(&self) -> bool {
        match self {
            Terminator::FallThrough => true,
            Terminator::Cond { behavior, .. } => match behavior {
                // A 100%-taken biased cond never falls through.
                CondBehavior::Biased { p_taken } => *p_taken < 1.0,
                _ => true,
            },
            // After a call returns, execution resumes at the next block.
            Terminator::Call { .. } => true,
            Terminator::Jump { .. } | Terminator::Return { .. } | Terminator::Indirect { .. } => {
                false
            }
        }
    }

    /// Instruction length of the terminator in bytes (0 for
    /// fall-through). This is an instruction size, not a collection
    /// length, so there is deliberately no `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        match self {
            Terminator::FallThrough => 0,
            Terminator::Cond { len, .. }
            | Terminator::Jump { len, .. }
            | Terminator::Call { len, .. }
            | Terminator::Return { len }
            | Terminator::Indirect { len, .. } => *len,
        }
    }

    /// Whether this branch can ever be resolved taken.
    pub fn can_take(&self) -> bool {
        match self {
            Terminator::FallThrough => false,
            Terminator::Cond { behavior, .. } => behavior.can_take(),
            _ => true,
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Address of the first instruction.
    pub start: InstAddr,
    /// Lengths of the non-terminator instructions.
    pub instr_lens: Vec<u8>,
    /// How the block ends.
    pub term: Terminator,
}

impl Block {
    /// Total byte size of the block including the terminator.
    pub fn size_bytes(&self) -> u64 {
        self.instr_lens.iter().map(|&l| l as u64).sum::<u64>() + self.term.len() as u64
    }

    /// Address of the terminator instruction (== end for fall-throughs).
    pub fn term_addr(&self) -> InstAddr {
        let body: u64 = self.instr_lens.iter().map(|&l| l as u64).sum();
        self.start.add(body)
    }
}

/// A function: contiguous basic blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Entry address (== first block start).
    pub entry: InstAddr,
    /// Basic blocks in layout order.
    pub blocks: Vec<Block>,
}

/// Parameters controlling program synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutParams {
    /// Target number of *reachable* branch sites (unique branch
    /// instruction addresses the trace can produce).
    pub target_sites: u32,
    /// Target fraction of reachable sites that are ever-taken
    /// (Table 4 column 2 / column 1).
    pub taken_fraction: f64,
    /// Base of the code address space.
    pub base_addr: u64,
    /// Inclusive range of basic blocks per function.
    pub blocks_per_fn: (u32, u32),
    /// Inclusive range of non-terminator instructions per block.
    pub instrs_per_block: (u32, u32),
    /// Terminator mix weights for non-last blocks:
    /// (cond, jump, call, indirect, fall-through).
    pub term_mix: [f64; 5],
    /// Fraction of conditional sites whose target is backward (loop edges).
    pub backward_cond_fraction: f64,
    /// Among taken-capable forward conditionals, fraction given a
    /// deterministic repeating pattern (PHT-friendly) instead of a bias.
    pub pattern_fraction: f64,
    /// Inclusive range of loop trip counts.
    pub loop_trip: (u16, u16),
    /// Probability that a function entry is aligned to a 4 KB page.
    pub page_align_fraction: f64,
    /// Insert a 64 KB "module gap" every this many functions (0 = never).
    pub module_gap_every: u32,
    /// Fraction of reachable sites the dynamic walk is expected to touch;
    /// the generator overshoots the target by `1 / reachable_margin`.
    pub reachable_margin: f64,
    /// Instructions between working-set (phase) shifts in the dynamic walk.
    pub phase_len: u64,
    /// Number of contiguous function-id ranges forming the active working
    /// set at any time.
    pub phase_ranges: u32,
    /// Size of the *hot* dispatch set: a handful of functions re-entered
    /// constantly (the 90/10 locality real commercial workloads exhibit).
    pub hot_funcs: u32,
    /// Probability that a dispatch targets the hot set instead of the
    /// broad working-set ranges.
    pub hot_dispatch_prob: f64,
}

impl Default for LayoutParams {
    fn default() -> Self {
        Self {
            target_sites: 20_000,
            taken_fraction: 0.65,
            base_addr: 0x0000_0000_0100_0000,
            blocks_per_fn: (6, 32),
            instrs_per_block: (1, 9),
            term_mix: [0.62, 0.06, 0.04, 0.04, 0.24],
            backward_cond_fraction: 0.10,
            pattern_fraction: 0.15,
            loop_trip: (2, 8),
            page_align_fraction: 0.25,
            module_gap_every: 48,
            reachable_margin: 0.94,
            phase_len: 400_000,
            phase_ranges: 4,
            hot_funcs: 48,
            hot_dispatch_prob: 0.15,
        }
    }
}

impl LayoutParams {
    /// A deliberately tiny layout for fast unit tests.
    pub fn small_test() -> Self {
        Self { target_sites: 400, ..Self::default() }
    }

    /// Layout sized for a Table-4 footprint: `sites` unique branch
    /// addresses of which `taken` are ever-taken.
    pub fn for_footprint(sites: u32, taken: u32) -> Self {
        assert!(taken <= sites, "taken sites cannot exceed total sites");
        Self {
            target_sites: sites,
            taken_fraction: taken as f64 / sites.max(1) as f64,
            ..Self::default()
        }
    }
}

/// A complete synthesized program image.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// All functions, id == index.
    pub functions: Vec<Function>,
    /// Number of dynamic-state sites (conditionals + indirects).
    pub n_state_sites: u32,
    /// Count of branch sites reachable from function entries.
    pub reachable_sites: u32,
    /// Count of reachable sites that can ever be taken.
    pub reachable_taken_sites: u32,
    /// Total byte span of the image.
    pub footprint_bytes: u64,
    /// Instructions between working-set shifts (copied from the params).
    pub phase_len: u64,
    /// Number of active working-set ranges (copied from the params).
    pub phase_ranges: u32,
    /// Hot dispatch set size (copied from the params).
    pub hot_funcs: u32,
    /// Hot dispatch probability (copied from the params).
    pub hot_dispatch_prob: f64,
}

impl Program {
    /// Synthesizes a program matching `params`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `params.target_sites == 0`.
    pub fn generate(params: &LayoutParams, seed: u64) -> Self {
        assert!(params.target_sites > 0, "target_sites must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = Generator::new(params, &mut rng);
        let overshoot =
            (params.target_sites as f64 / params.reachable_margin.clamp(0.05, 1.0)) as u64;
        let mut funcs: Vec<Function> = Vec::new();
        let mut reachable: u64 = 0;
        let mut reachable_taken: u64 = 0;
        // Hard cap so degenerate parameters cannot spin forever.
        let max_funcs = 4_000_000usize;
        while reachable < overshoot && funcs.len() < max_funcs {
            let f = gen.gen_function(&mut rng, funcs.len() as u32);
            let (r, rt) = reachability(&f);
            reachable += r as u64;
            reachable_taken += rt as u64;
            funcs.push(f);
        }
        let n_funcs = funcs.len() as u32;
        // Fix up call targets that referenced not-yet-generated functions.
        for f in &mut funcs {
            for b in &mut f.blocks {
                if let Terminator::Call { callee, .. } = &mut b.term {
                    *callee %= n_funcs;
                }
            }
        }
        Program {
            functions: funcs,
            n_state_sites: gen.next_site,
            reachable_sites: reachable as u32,
            reachable_taken_sites: reachable_taken as u32,
            footprint_bytes: gen.cursor - params.base_addr,
            phase_len: params.phase_len,
            phase_ranges: params.phase_ranges,
            hot_funcs: params.hot_funcs,
            hot_dispatch_prob: params.hot_dispatch_prob,
        }
    }

    /// Iterator over the addresses of every branch site in layout order
    /// (reachable or not). Mainly for statistics and tests.
    pub fn branch_site_addrs(&self) -> impl Iterator<Item = InstAddr> + '_ {
        self.functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .filter(|b| b.term.is_branch())
            .map(|b| b.term_addr())
    }

    /// Number of functions in the image.
    pub fn n_functions(&self) -> u32 {
        self.functions.len() as u32
    }
}

/// Computes (reachable branch sites, reachable taken-capable sites) for a
/// function, following realized control-flow edges from block 0.
fn reachability(f: &Function) -> (u32, u32) {
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(i) = stack.pop() {
        if seen[i] {
            continue;
        }
        seen[i] = true;
        let b = &f.blocks[i];
        if b.term.can_fall_through() && i + 1 < n {
            stack.push(i + 1);
        }
        match &b.term {
            Terminator::Cond { target_block, behavior, .. } if behavior.can_take() => {
                stack.push(*target_block as usize)
            }
            Terminator::Jump { target_block, .. } => stack.push(*target_block as usize),
            Terminator::Indirect { targets, behavior, .. } => match behavior {
                IndirectBehavior::Monomorphic => stack.push(targets[0] as usize),
                _ => stack.extend(targets.iter().map(|&t| t as usize)),
            },
            _ => {}
        }
    }
    let mut sites = 0;
    let mut taken = 0;
    for (i, b) in f.blocks.iter().enumerate() {
        if seen[i] && b.term.is_branch() {
            sites += 1;
            if b.term.can_take() {
                taken += 1;
            }
        }
    }
    (sites, taken)
}

/// Incremental generator state shared across functions.
struct Generator<'p> {
    params: &'p LayoutParams,
    cursor: u64,
    next_site: SiteId,
    sites_emitted: u64,
    never_taken_emitted: u64,
    term_cdf: [f64; 5],
}

impl<'p> Generator<'p> {
    fn new(params: &'p LayoutParams, _rng: &mut SmallRng) -> Self {
        let mut cdf = [0.0; 5];
        let total: f64 = params.term_mix.iter().sum();
        assert!(total > 0.0, "terminator mix must have positive weight");
        let mut acc = 0.0;
        for (i, w) in params.term_mix.iter().enumerate() {
            acc += w / total;
            cdf[i] = acc;
        }
        Self {
            params,
            cursor: params.base_addr,
            next_site: 0,
            sites_emitted: 0,
            never_taken_emitted: 0,
            term_cdf: cdf,
        }
    }

    fn instr_len(&self, rng: &mut SmallRng) -> u8 {
        let x: f64 = rng.random();
        if x < 0.25 {
            2
        } else if x < 0.65 {
            4
        } else {
            6
        }
    }

    fn branch_len(&self, rng: &mut SmallRng) -> u8 {
        if rng.random_bool(0.3) {
            6
        } else {
            4
        }
    }

    /// Greedy allocator keeping the global never-taken site fraction at
    /// `1 - taken_fraction`.
    fn want_never_taken(&mut self) -> bool {
        let desired = (1.0 - self.params.taken_fraction) * self.sites_emitted as f64;
        (self.never_taken_emitted as f64) < desired
    }

    fn gen_function(&mut self, rng: &mut SmallRng, id: u32) -> Function {
        let p = self.params;
        // Occasional module gap spreads code over the address space.
        if p.module_gap_every > 0 && id > 0 && id.is_multiple_of(p.module_gap_every) {
            self.cursor += 64 * 1024;
        }
        // Function alignment.
        if rng.random_bool(p.page_align_fraction) {
            self.cursor = (self.cursor + 4095) & !4095;
        } else {
            self.cursor = (self.cursor + 7) & !7;
            self.cursor += rng.random_range(0..8u64) * 2;
        }
        let entry = InstAddr::new(self.cursor);
        let n_blocks = rng.random_range(p.blocks_per_fn.0..=p.blocks_per_fn.1).max(1) as usize;
        let mut blocks = Vec::with_capacity(n_blocks);
        for bi in 0..n_blocks {
            let n_instrs = rng.random_range(p.instrs_per_block.0..=p.instrs_per_block.1) as usize;
            let instr_lens: Vec<u8> = (0..n_instrs).map(|_| self.instr_len(rng)).collect();
            let is_last = bi + 1 == n_blocks;
            let term = if is_last {
                self.sites_emitted += 1;
                Terminator::Return { len: self.branch_len(rng) }
            } else {
                self.gen_terminator(rng, id, bi as u32, n_blocks as u32, &blocks)
            };
            let start = InstAddr::new(self.cursor);
            let body: u64 = instr_lens.iter().map(|&l| l as u64).sum();
            self.cursor += body + term.len() as u64;
            blocks.push(Block { start, instr_lens, term });
        }
        // Small inter-function gap.
        self.cursor += rng.random_range(0..24u64) * 2;
        Function { entry, blocks }
    }

    /// Picks the largest valid backward loop target for block `i`: the
    /// loop body (blocks `t..=i`) must be small, call-free and contain no
    /// other back-edge, so loop iteration multiplies straight-line work
    /// only — otherwise call chains inside hot loops make function
    /// traversals effectively never finish.
    fn backward_loop_target(block_idx: u32, prior: &[Block], rng: &mut SmallRng) -> Option<u32> {
        let lo = block_idx.saturating_sub(3);
        let t = rng.random_range(lo..=block_idx);
        for j in t..block_idx {
            match &prior[j as usize].term {
                Terminator::Call { .. } => return None,
                Terminator::Cond { target_block, .. } if *target_block <= j => return None,
                Terminator::Return { .. } => return None,
                _ => {}
            }
        }
        Some(t)
    }

    fn gen_terminator(
        &mut self,
        rng: &mut SmallRng,
        func_id: u32,
        block_idx: u32,
        n_blocks: u32,
        prior: &[Block],
    ) -> Terminator {
        let p = self.params;
        let x: f64 = rng.random();
        let kind = self.term_cdf.iter().position(|&c| x < c).unwrap_or(4);
        let len = self.branch_len(rng);
        match kind {
            0 => {
                // Conditional.
                self.sites_emitted += 1;
                let site = self.next_site;
                self.next_site += 1;
                let backward = rng.random_bool(p.backward_cond_fraction);
                if self.want_never_taken() {
                    self.never_taken_emitted += 1;
                    // Never-taken check; target is recorded but unused.
                    let target_block = rng.random_range(block_idx + 1..n_blocks);
                    return Terminator::Cond {
                        site,
                        len,
                        target_block,
                        behavior: CondBehavior::Biased { p_taken: 0.0 },
                    };
                }
                let loop_target = if backward {
                    // Loop back-edge (self-loops allowed: the paper's
                    // fastest prediction case is a single-branch loop).
                    Self::backward_loop_target(block_idx, prior, rng)
                } else {
                    None
                };
                if let Some(target_block) = loop_target {
                    let trip = rng.random_range(p.loop_trip.0..=p.loop_trip.1).max(2);
                    Terminator::Cond {
                        site,
                        len,
                        target_block,
                        behavior: CondBehavior::Loop { trip },
                    }
                } else {
                    let target_block = rng.random_range(block_idx + 1..n_blocks);
                    let behavior = if rng.random_bool(p.pattern_fraction) {
                        let period = rng.random_range(2..=8u8);
                        // Ensure at least one taken bit.
                        let bits = rng.random_range(1u32..(1u32 << period));
                        CondBehavior::Pattern { period, bits }
                    } else {
                        // Real branch populations are heavily biased: most
                        // sites are strongly one-sided, a minority are
                        // moderately biased, and a small tail is mixed.
                        let x: f64 = rng.random();
                        let p_taken = if x < 0.60 {
                            let strong = rng.random_range(0.92..0.99);
                            if rng.random_bool(0.5) {
                                strong
                            } else {
                                1.0 - strong
                            }
                        } else if x < 0.85 {
                            rng.random_range(0.72..0.92)
                        } else {
                            rng.random_range(0.30..0.72)
                        };
                        CondBehavior::Biased { p_taken }
                    };
                    Terminator::Cond { site, len, target_block, behavior }
                }
            }
            1 => {
                self.sites_emitted += 1;
                let target_block = rng.random_range(block_idx + 1..n_blocks);
                Terminator::Jump { len, target_block }
            }
            2 => {
                self.sites_emitted += 1;
                // Local call graph: neighbours mostly, occasionally far.
                let callee = if rng.random_bool(0.85) {
                    let lo = func_id.saturating_sub(6);
                    rng.random_range(lo..=func_id + 8)
                } else {
                    rng.random_range(0..func_id + 64)
                };
                Terminator::Call { len, callee }
            }
            3 => {
                self.sites_emitted += 1;
                let site = self.next_site;
                self.next_site += 1;
                let n_targets = rng.random_range(2..=5u32).min(n_blocks - block_idx - 1).max(1);
                let mut targets: Vec<u32> = Vec::with_capacity(n_targets as usize);
                for _ in 0..n_targets {
                    targets.push(rng.random_range(block_idx + 1..n_blocks));
                }
                targets.sort_unstable();
                targets.dedup();
                // Half of indirect sites are effectively monomorphic
                // (virtual calls with one receiver in practice).
                let behavior = {
                    let x: f64 = rng.random();
                    if x < 0.65 {
                        IndirectBehavior::Monomorphic
                    } else if x < 0.85 {
                        IndirectBehavior::RoundRobin
                    } else {
                        IndirectBehavior::Random
                    }
                };
                Terminator::Indirect { site, len, targets, behavior }
            }
            _ => Terminator::FallThrough,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = LayoutParams::small_test();
        let a = Program::generate(&p, 11);
        let b = Program::generate(&p, 11);
        assert_eq!(a, b);
        let c = Program::generate(&p, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn reachable_sites_close_to_target() {
        let p = LayoutParams::for_footprint(10_000, 6_500);
        let prog = Program::generate(&p, 3);
        let target = 10_000f64 / p.reachable_margin;
        let got = prog.reachable_sites as f64;
        assert!(
            (got - target).abs() / target < 0.15,
            "reachable {} vs overshoot target {}",
            got,
            target
        );
    }

    #[test]
    fn taken_fraction_close_to_target() {
        for &(sites, taken) in &[(20_000u32, 9_000u32), (10_000, 8_300), (30_000, 15_000)] {
            let p = LayoutParams::for_footprint(sites, taken);
            let prog = Program::generate(&p, 5);
            let got = prog.reachable_taken_sites as f64 / prog.reachable_sites as f64;
            let want = taken as f64 / sites as f64;
            assert!(
                (got - want).abs() < 0.08,
                "taken fraction {got:.3} vs target {want:.3} for {sites}/{taken}"
            );
        }
    }

    #[test]
    fn blocks_are_contiguous_within_functions() {
        let prog = Program::generate(&LayoutParams::small_test(), 9);
        for f in &prog.functions {
            assert_eq!(f.entry, f.blocks[0].start);
            for w in f.blocks.windows(2) {
                assert_eq!(
                    w[0].start.add(w[0].size_bytes()),
                    w[1].start,
                    "blocks must be laid out contiguously"
                );
            }
        }
    }

    #[test]
    fn addresses_are_halfword_aligned_and_increasing() {
        let prog = Program::generate(&LayoutParams::small_test(), 4);
        let mut prev = 0u64;
        for f in &prog.functions {
            assert_eq!(f.entry.raw() % 2, 0);
            assert!(f.entry.raw() >= prev, "functions must not overlap");
            prev = f.blocks.last().unwrap().start.raw();
        }
    }

    #[test]
    fn every_function_ends_in_return() {
        let prog = Program::generate(&LayoutParams::small_test(), 8);
        for f in &prog.functions {
            assert!(matches!(f.blocks.last().unwrap().term, Terminator::Return { .. }));
        }
    }

    #[test]
    fn call_targets_are_in_range() {
        let prog = Program::generate(&LayoutParams::small_test(), 2);
        let n = prog.n_functions();
        for f in &prog.functions {
            for b in &f.blocks {
                if let Terminator::Call { callee, .. } = b.term {
                    assert!(callee < n);
                }
            }
        }
    }

    #[test]
    fn branch_targets_are_in_function_range() {
        let prog = Program::generate(&LayoutParams::small_test(), 6);
        for f in &prog.functions {
            let n = f.blocks.len() as u32;
            for b in &f.blocks {
                match &b.term {
                    Terminator::Cond { target_block, .. }
                    | Terminator::Jump { target_block, .. } => {
                        assert!(*target_block < n)
                    }
                    Terminator::Indirect { targets, .. } => {
                        assert!(!targets.is_empty());
                        assert!(targets.iter().all(|&t| t < n));
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn footprint_scales_with_sites() {
        let small = Program::generate(&LayoutParams::for_footprint(2_000, 1_300), 1);
        let large = Program::generate(&LayoutParams::for_footprint(20_000, 13_000), 1);
        assert!(large.footprint_bytes > 5 * small.footprint_bytes);
        // Sanity: a 20k-site program must dwarf the BTB1's ~128 KB reach.
        assert!(large.footprint_bytes > 256 * 1024);
    }

    #[test]
    fn term_addr_is_after_body() {
        let prog = Program::generate(&LayoutParams::small_test(), 13);
        let b = &prog.functions[0].blocks[0];
        let body: u64 = b.instr_lens.iter().map(|&l| l as u64).sum();
        assert_eq!(b.term_addr(), b.start.add(body));
    }

    #[test]
    #[should_panic(expected = "target_sites must be positive")]
    fn zero_target_rejected() {
        let p = LayoutParams { target_sites: 0, ..LayoutParams::default() };
        Program::generate(&p, 0);
    }
}
