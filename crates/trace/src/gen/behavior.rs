//! Per-branch-site dynamic behaviour models.
//!
//! Each conditional branch site is assigned one behaviour at layout time;
//! the walker keeps a small amount of per-site dynamic state (loop
//! counters, pattern cursors) and asks the behaviour to resolve each
//! execution. The mix of behaviours is what gives the direction predictors
//! (bimodal BHT in the BTB entry, path-indexed PHT) realistic work.

use zbp_support::rng::SmallRng;

/// Behaviour of one conditional branch site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CondBehavior {
    /// Statically biased: taken with probability `p_taken` on every
    /// execution. `p_taken == 0.0` models never-taken sites (they count as
    /// unique branch addresses but never as unique *taken* addresses, which
    /// is how the generator hits Table 4's two footprint columns).
    Biased {
        /// Per-execution probability of being taken.
        p_taken: f64,
    },
    /// Loop back-edge: taken `trip - 1` times, then not-taken once, then
    /// the counter restarts. Highly predictable for a 2-bit BHT when the
    /// trip count is large.
    Loop {
        /// Loop trip count (>= 1).
        trip: u16,
    },
    /// Deterministic repeating direction pattern of `period` bits (LSB
    /// first). Mispredicts a plain bimodal BHT but is learnable by the
    /// path-correlated PHT.
    Pattern {
        /// Pattern length in bits (1..=32).
        period: u8,
        /// Direction bits, bit i = outcome of the i-th execution mod period.
        bits: u32,
    },
}

impl CondBehavior {
    /// Resolves one execution given the site's mutable state.
    pub fn resolve(&self, state: &mut SiteState, rng: &mut SmallRng) -> bool {
        match *self {
            CondBehavior::Biased { p_taken } => {
                if p_taken <= 0.0 {
                    false
                } else if p_taken >= 1.0 {
                    true
                } else {
                    rng.random_bool(p_taken)
                }
            }
            CondBehavior::Loop { trip } => {
                let trip = trip.max(1) as u32;
                state.counter += 1;
                if state.counter >= trip {
                    state.counter = 0;
                    false
                } else {
                    true
                }
            }
            CondBehavior::Pattern { period, bits } => {
                let period = period.clamp(1, 32) as u32;
                let taken = (bits >> state.counter) & 1 == 1;
                state.counter = (state.counter + 1) % period;
                taken
            }
        }
    }

    /// Whether this behaviour can ever produce a taken outcome.
    pub fn can_take(&self) -> bool {
        match *self {
            CondBehavior::Biased { p_taken } => p_taken > 0.0,
            CondBehavior::Loop { trip } => trip > 1,
            CondBehavior::Pattern { period, bits } => {
                let period = period.clamp(1, 32);
                (0..period).any(|i| (bits >> i) & 1 == 1)
            }
        }
    }
}

/// Behaviour of an indirect branch site (computed goto / virtual dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndirectBehavior {
    /// Always dispatches to the same target (index 0).
    Monomorphic,
    /// Rotates round-robin over its target list; defeats a single-target
    /// BTB entry and exercises the changing target buffer (CTB).
    RoundRobin,
    /// Picks a target uniformly at random on each execution.
    Random,
}

impl IndirectBehavior {
    /// Chooses the index of the next target out of `n_targets`.
    pub fn choose(&self, n_targets: usize, state: &mut SiteState, rng: &mut SmallRng) -> usize {
        debug_assert!(n_targets > 0);
        match self {
            IndirectBehavior::Monomorphic => 0,
            IndirectBehavior::RoundRobin => {
                let i = state.counter as usize % n_targets;
                state.counter = state.counter.wrapping_add(1);
                i
            }
            IndirectBehavior::Random => rng.random_range(0..n_targets),
        }
    }
}

/// Mutable per-site dynamic state (loop counter / pattern cursor /
/// round-robin cursor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteState {
    /// Generic counter reused by all behaviours.
    pub counter: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn never_taken_site_never_takes() {
        let b = CondBehavior::Biased { p_taken: 0.0 };
        let mut s = SiteState::default();
        let mut r = rng();
        assert!(!b.can_take());
        for _ in 0..100 {
            assert!(!b.resolve(&mut s, &mut r));
        }
    }

    #[test]
    fn always_taken_site_always_takes() {
        let b = CondBehavior::Biased { p_taken: 1.0 };
        let mut s = SiteState::default();
        let mut r = rng();
        for _ in 0..100 {
            assert!(b.resolve(&mut s, &mut r));
        }
    }

    #[test]
    fn biased_site_roughly_matches_probability() {
        let b = CondBehavior::Biased { p_taken: 0.8 };
        let mut s = SiteState::default();
        let mut r = rng();
        let taken = (0..10_000).filter(|_| b.resolve(&mut s, &mut r)).count();
        assert!((7_500..8_500).contains(&taken), "taken={taken}");
    }

    #[test]
    fn loop_behaviour_takes_trip_minus_one_times() {
        let b = CondBehavior::Loop { trip: 5 };
        let mut s = SiteState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..10).map(|_| b.resolve(&mut s, &mut r)).collect();
        assert_eq!(outcomes, vec![true, true, true, true, false, true, true, true, true, false]);
    }

    #[test]
    fn trip_one_loop_never_takes() {
        let b = CondBehavior::Loop { trip: 1 };
        let mut s = SiteState::default();
        let mut r = rng();
        assert!(!b.can_take());
        for _ in 0..5 {
            assert!(!b.resolve(&mut s, &mut r));
        }
    }

    #[test]
    fn pattern_repeats() {
        // Pattern 0b011 over period 3: T, T, N, T, T, N ...
        let b = CondBehavior::Pattern { period: 3, bits: 0b011 };
        let mut s = SiteState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..6).map(|_| b.resolve(&mut s, &mut r)).collect();
        assert_eq!(outcomes, vec![true, true, false, true, true, false]);
        assert!(b.can_take());
        assert!(!CondBehavior::Pattern { period: 4, bits: 0 }.can_take());
    }

    #[test]
    fn monomorphic_indirect_pins_target_zero() {
        let b = IndirectBehavior::Monomorphic;
        let mut s = SiteState::default();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(b.choose(4, &mut s, &mut r), 0);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let b = IndirectBehavior::RoundRobin;
        let mut s = SiteState::default();
        let mut r = rng();
        let picks: Vec<usize> = (0..6).map(|_| b.choose(3, &mut s, &mut r)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_indirect_stays_in_bounds_and_varies() {
        let b = IndirectBehavior::Random;
        let mut s = SiteState::default();
        let mut r = rng();
        let picks: Vec<usize> = (0..100).map(|_| b.choose(5, &mut s, &mut r)).collect();
        assert!(picks.iter().all(|&p| p < 5));
        assert!(picks.iter().any(|&p| p != picks[0]), "should vary");
    }
}
