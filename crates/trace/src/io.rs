//! Compact binary trace serialization.
//!
//! Traces are normally re-generated on the fly, but a captured stream can
//! be persisted for external analysis or replayed through other tools.
//! The format is little-endian: a header (`magic`, `version`, name,
//! record count) followed by one variable-length record per instruction.
//!
//! Malformed input is rejected loudly: truncation and corrupt fields
//! report the byte offset the parse died at, so a damaged file can be
//! diagnosed without a hex dump. (The experiment-facing sibling of this
//! format is the checksummed [`store`](crate::store) entry layout.)

use crate::branch::{BranchKind, BranchRec};
use crate::instr::TraceInstr;
use crate::{InstAddr, Trace, VecTrace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"ZBPT";
const VERSION: u32 = 1;

/// Errors produced while reading a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure (other than a short read).
    Io(io::Error),
    /// The stream does not start with the `ZBPT` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The stream ended before the field starting at `offset`.
    Truncated {
        /// Byte offset of the field the reader could not complete.
        offset: u64,
    },
    /// A record field holds an invalid value.
    Corrupt {
        /// Which field is invalid.
        what: &'static str,
        /// Byte offset the field starts at.
        offset: u64,
    },
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => write!(f, "missing ZBPT magic"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::Truncated { offset } => {
                write!(f, "truncated trace: stream ends inside the field at byte offset {offset}")
            }
            ReadTraceError::Corrupt { what, offset } => {
                write!(f, "corrupt trace record: bad {what} at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn code_kind(c: u8) -> Option<BranchKind> {
    Some(match c {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        _ => return None,
    })
}

/// Serializes a trace to `writer`.
///
/// # Errors
///
/// Returns any error from the underlying writer.
pub fn write_trace<T: Trace, W: Write>(trace: &T, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&trace.len().to_le_bytes())?;
    for i in trace.iter() {
        writer.write_all(&i.addr.raw().to_le_bytes())?;
        writer.write_all(&[i.len])?;
        let wrong = u8::from(i.wrong_path) << 5;
        match i.branch {
            None => writer.write_all(&[wrong])?,
            Some(b) => {
                let flags = 0x80 | (u8::from(b.taken) << 6) | wrong | kind_code(b.kind);
                writer.write_all(&[flags])?;
                writer.write_all(&b.target.raw().to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// A reader wrapper counting consumed bytes, so every error can name
/// the offset it happened at.
struct Counting<R> {
    inner: R,
    pos: u64,
}

impl<R: Read> Counting<R> {
    /// Fills `buf` exactly; a short read is [`ReadTraceError::Truncated`]
    /// at the offset the field started.
    fn exact(&mut self, buf: &mut [u8]) -> Result<(), ReadTraceError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.pos += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                Err(ReadTraceError::Truncated { offset: self.pos })
            }
            Err(e) => Err(ReadTraceError::Io(e)),
        }
    }

    fn u32(&mut self) -> Result<u32, ReadTraceError> {
        let mut b = [0u8; 4];
        self.exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, ReadTraceError> {
        let mut b = [0u8; 8];
        self.exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

/// Deserializes a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure or malformed input;
/// truncation and corruption name the byte offset of the bad field.
pub fn read_trace<R: Read>(reader: R) -> Result<VecTrace, ReadTraceError> {
    let mut r = Counting { inner: reader, pos: 0 };
    let mut magic = [0u8; 4];
    r.exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(ReadTraceError::BadVersion(version));
    }
    let name_off = r.pos;
    let name_len = r.u32()? as usize;
    if name_len > 1 << 20 {
        return Err(ReadTraceError::Corrupt { what: "name length", offset: name_off });
    }
    let mut name = vec![0u8; name_len];
    r.exact(&mut name)?;
    let name = String::from_utf8(name)
        .map_err(|_| ReadTraceError::Corrupt { what: "name utf-8", offset: name_off + 4 })?;
    let count = r.u64()?;
    let mut instrs = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let addr = InstAddr::new(r.u64()?);
        let rec_off = r.pos;
        let mut two = [0u8; 2];
        r.exact(&mut two)?;
        let (len, flags) = (two[0], two[1]);
        if !matches!(len, 2 | 4 | 6) {
            return Err(ReadTraceError::Corrupt { what: "instruction length", offset: rec_off });
        }
        let wrong_path = flags & 0x20 != 0;
        let branch = if flags & 0x80 != 0 {
            let kind = code_kind(flags & 0x0F)
                .ok_or(ReadTraceError::Corrupt { what: "branch kind", offset: rec_off + 1 })?;
            let taken = flags & 0x40 != 0;
            let target = InstAddr::new(r.u64()?);
            Some(BranchRec { kind, taken, target })
        } else if flags & !0x20 != 0 {
            return Err(ReadTraceError::Corrupt { what: "flags", offset: rec_off + 1 });
        } else {
            None
        };
        instrs.push(TraceInstr { addr, len, wrong_path, branch });
    }
    Ok(VecTrace::new(name, instrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::layout::LayoutParams;
    use crate::gen::GenTrace;

    #[test]
    fn roundtrip_preserves_records_and_name() {
        let t = GenTrace::new("roundtrip", &LayoutParams::small_test(), 3, 2_000);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.name(), "roundtrip");
        let orig: Vec<_> = t.iter().collect();
        assert_eq!(back.records(), orig.as_slice());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(read_trace(buf.as_slice()), Err(ReadTraceError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncated_stream_with_offset() {
        let t = GenTrace::new("t", &LayoutParams::small_test(), 3, 100);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace(buf.as_slice()).unwrap_err();
        match err {
            ReadTraceError::Truncated { offset } => {
                assert!(offset > 0 && offset <= buf.len() as u64, "offset {offset}")
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert!(err.to_string().contains("byte offset"));
    }

    #[test]
    fn rejects_corrupt_length_with_offset() {
        let t = GenTrace::new("t", &LayoutParams::small_test(), 3, 1);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        // Record layout: header(4+4+4+1 name byte... name "t" = 1 byte) +
        // count(8) then addr(8) len(1). Corrupt the len byte.
        let len_pos = 4 + 4 + 4 + 1 + 8 + 8;
        buf[len_pos] = 3;
        let err = read_trace(buf.as_slice()).unwrap_err();
        match err {
            ReadTraceError::Corrupt { what, offset } => {
                assert_eq!(what, "instruction length");
                assert_eq!(offset, len_pos as u64);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(err.to_string().contains(&format!("offset {len_pos}")));
    }

    #[test]
    fn rejects_bit_flipped_flags_with_offset() {
        let t = GenTrace::new("t", &LayoutParams::small_test(), 3, 1);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let flag_pos = 4 + 4 + 4 + 1 + 8 + 8 + 1;
        // For a non-branch record, any flag bit outside wrong-path is
        // invalid; for a branch record, kind codes 5..=15 are invalid.
        buf[flag_pos] = if buf[flag_pos] & 0x80 != 0 { buf[flag_pos] | 0x0F } else { 0x1F };
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, ReadTraceError::Corrupt { offset, .. } if offset == flag_pos as u64),
            "got {err:?}"
        );
    }

    #[test]
    fn error_source_chains_io() {
        use std::error::Error;
        let err = ReadTraceError::Io(io::Error::other("x"));
        assert!(err.source().is_some());
        assert!(ReadTraceError::BadMagic.source().is_none());
    }
}
