//! Compact binary trace serialization.
//!
//! Traces are normally re-generated on the fly, but a captured stream can
//! be persisted for external analysis or replayed through other tools.
//! The format is little-endian: a header (`magic`, `version`, name,
//! record count) followed by one variable-length record per instruction.

use crate::branch::{BranchKind, BranchRec};
use crate::instr::TraceInstr;
use crate::{InstAddr, Trace, VecTrace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"ZBPT";
const VERSION: u32 = 1;

/// Errors produced while reading a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `ZBPT` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A record field holds an invalid value.
    Corrupt(&'static str),
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => write!(f, "missing ZBPT magic"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::Corrupt(what) => write!(f, "corrupt trace record: {what}"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn code_kind(c: u8) -> Option<BranchKind> {
    Some(match c {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        _ => return None,
    })
}

/// Serializes a trace to `writer`.
///
/// # Errors
///
/// Returns any error from the underlying writer.
pub fn write_trace<T: Trace, W: Write>(trace: &T, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&trace.len().to_le_bytes())?;
    for i in trace.iter() {
        writer.write_all(&i.addr.raw().to_le_bytes())?;
        writer.write_all(&[i.len])?;
        let wrong = u8::from(i.wrong_path) << 5;
        match i.branch {
            None => writer.write_all(&[wrong])?,
            Some(b) => {
                let flags = 0x80 | (u8::from(b.taken) << 6) | wrong | kind_code(b.kind);
                writer.write_all(&[flags])?;
                writer.write_all(&b.target.raw().to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Deserializes a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure or malformed input.
pub fn read_trace<R: Read>(mut reader: R) -> Result<VecTrace, ReadTraceError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(ReadTraceError::BadVersion(version));
    }
    let name_len = read_u32(&mut reader)? as usize;
    if name_len > 1 << 20 {
        return Err(ReadTraceError::Corrupt("name length"));
    }
    let mut name = vec![0u8; name_len];
    reader.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| ReadTraceError::Corrupt("name utf-8"))?;
    let count = read_u64(&mut reader)?;
    let mut instrs = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let addr = InstAddr::new(read_u64(&mut reader)?);
        let mut two = [0u8; 2];
        reader.read_exact(&mut two)?;
        let (len, flags) = (two[0], two[1]);
        if !matches!(len, 2 | 4 | 6) {
            return Err(ReadTraceError::Corrupt("instruction length"));
        }
        let wrong_path = flags & 0x20 != 0;
        let branch = if flags & 0x80 != 0 {
            let kind = code_kind(flags & 0x0F).ok_or(ReadTraceError::Corrupt("branch kind"))?;
            let taken = flags & 0x40 != 0;
            let target = InstAddr::new(read_u64(&mut reader)?);
            Some(BranchRec { kind, taken, target })
        } else if flags & !0x20 != 0 {
            return Err(ReadTraceError::Corrupt("flags"));
        } else {
            None
        };
        instrs.push(TraceInstr { addr, len, wrong_path, branch });
    }
    Ok(VecTrace::new(name, instrs))
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    reader.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::layout::LayoutParams;
    use crate::gen::GenTrace;

    #[test]
    fn roundtrip_preserves_records_and_name() {
        let t = GenTrace::new("roundtrip", &LayoutParams::small_test(), 3, 2_000);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.name(), "roundtrip");
        let orig: Vec<_> = t.iter().collect();
        assert_eq!(back.records(), orig.as_slice());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(read_trace(buf.as_slice()), Err(ReadTraceError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncated_stream() {
        let t = GenTrace::new("t", &LayoutParams::small_test(), 3, 100);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_trace(buf.as_slice()), Err(ReadTraceError::Io(_))));
    }

    #[test]
    fn rejects_corrupt_length() {
        let t = GenTrace::new("t", &LayoutParams::small_test(), 3, 1);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        // Record layout: header(4+4+4+1 name byte... name "t" = 1 byte) +
        // count(8) then addr(8) len(1). Corrupt the len byte.
        let len_pos = 4 + 4 + 4 + 1 + 8 + 8;
        buf[len_pos] = 3;
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(ReadTraceError::Corrupt("instruction length"))
        ));
    }

    #[test]
    fn error_source_chains_io() {
        use std::error::Error;
        let err = ReadTraceError::from(io::Error::other("x"));
        assert!(err.source().is_some());
        assert!(ReadTraceError::BadMagic.source().is_none());
    }
}
