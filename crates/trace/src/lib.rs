//! Synthetic z/Architecture-like instruction traces for the zEC12
//! two-level bulk-preload branch prediction reproduction (HPCA 2013).
//!
//! The paper evaluates its predictor on 13 proprietary large-footprint
//! commercial traces (IBM LSPR, Trade6, TPF, DayTrader, Informix — see
//! Table 4). Those traces are not available, so this crate generates
//! *synthetic* workloads whose branch-site footprints match the published
//! per-trace unique-branch and unique-taken-branch counts, with realistic
//! code layout (functions and basic blocks over 4 KB pages), instruction
//! lengths (2/4/6 bytes as in z/Architecture), branch behaviour (biased,
//! loop, pattern-correlated, polymorphic indirect) and phased working sets.
//!
//! # Quick start
//!
//! ```
//! use zbp_trace::{Trace, profile::WorkloadProfile};
//!
//! let profile = WorkloadProfile::zos_lspr_cb84();
//! let trace = profile.build(7).with_len(10_000);
//! let n = trace.iter().count();
//! assert_eq!(n, 10_000);
//! ```
//!
//! Traces are *re-runnable generators*: [`Trace::iter`] returns a fresh
//! deterministic instruction stream each time, so multi-configuration
//! studies replay the identical dynamic instruction sequence without
//! holding gigabytes of records in memory.

#![warn(missing_docs)]

pub mod addr;
pub mod analysis;
pub mod branch;
pub mod compact;
pub mod gen;
pub mod ingest;
pub mod instr;
pub mod io;
pub mod materialize;
pub mod profile;
pub mod source;
pub mod stats;
pub mod store;

pub use addr::InstAddr;
pub use branch::{BranchKind, BranchRec};
pub use compact::{CompactCaptureError, CompactParts, CompactTrace};
pub use ingest::{ExternalTrace, IngestError};
pub use instr::TraceInstr;
pub use materialize::MaterializedTrace;
pub use source::{SourceTrace, WorkloadSource};
pub use stats::TraceStats;
pub use store::{TraceStore, TraceStoreKey, TraceStoreStats};

/// A deterministic, re-runnable instruction trace.
///
/// Implementations must return the identical instruction stream from every
/// call to [`Trace::iter`]; the simulator relies on this to replay one
/// workload across several predictor configurations.
pub trait Trace {
    /// Iterator over the dynamic instruction stream.
    type Iter<'a>: Iterator<Item = TraceInstr>
    where
        Self: 'a;

    /// Returns a fresh iterator over the full instruction stream.
    fn iter(&self) -> Self::Iter<'_>;

    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Number of dynamic instructions the stream will produce.
    fn len(&self) -> u64;

    /// Whether the trace produces no instructions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory trace: a plain vector of records.
///
/// Useful for unit tests and for traces loaded from disk via [`io`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VecTrace {
    name: String,
    instrs: Vec<TraceInstr>,
}

impl VecTrace {
    /// Creates a named in-memory trace from records.
    pub fn new(name: impl Into<String>, instrs: Vec<TraceInstr>) -> Self {
        Self { name: name.into(), instrs }
    }

    /// Borrow the underlying records.
    pub fn records(&self) -> &[TraceInstr] {
        &self.instrs
    }

    /// Consume the trace, returning the records.
    pub fn into_records(self) -> Vec<TraceInstr> {
        self.instrs
    }
}

impl FromIterator<TraceInstr> for VecTrace {
    fn from_iter<T: IntoIterator<Item = TraceInstr>>(iter: T) -> Self {
        Self { name: "anonymous".into(), instrs: iter.into_iter().collect() }
    }
}

impl Extend<TraceInstr> for VecTrace {
    fn extend<T: IntoIterator<Item = TraceInstr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

impl Trace for VecTrace {
    type Iter<'a> = std::iter::Cloned<std::slice::Iter<'a, TraceInstr>>;

    fn iter(&self) -> Self::Iter<'_> {
        self.instrs.iter().cloned()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> u64 {
        self.instrs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_roundtrip() {
        let i = TraceInstr::plain(InstAddr::new(0x100), 4);
        let t = VecTrace::new("t", vec![i]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.iter().next(), Some(i));
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn vec_trace_collect_and_extend() {
        let i = TraceInstr::plain(InstAddr::new(0x100), 4);
        let mut t: VecTrace = std::iter::repeat_n(i, 3).collect();
        assert_eq!(t.len(), 3);
        t.extend(std::iter::once(i));
        assert_eq!(t.len(), 4);
        assert_eq!(t.name(), "anonymous");
    }

    #[test]
    fn empty_trace_is_empty() {
        let t = VecTrace::default();
        assert!(t.is_empty());
    }
}
