//! Materialized traces: generate once, replay everywhere.
//!
//! Synthetic traces are re-runnable generators ([`Trace::iter`] walks the
//! program afresh each call), which keeps memory flat but makes every
//! replay pay the full dynamic-walk cost. Multi-configuration studies
//! replay the *same* workload many times — Figure 2 alone replays each
//! of 13 traces across 3 configurations — so a [`MaterializedTrace`]
//! captures the instruction stream once into one `Arc`-shared buffer
//! and serves every subsequent replay as a plain slice scan.
//!
//! Cloning a materialized trace is an `Arc` bump: all configuration
//! columns of a session grid share one allocation.

use std::sync::Arc;

use crate::instr::TraceInstr;
use crate::Trace;

/// An instruction stream captured in memory behind an [`Arc`], so many
/// replays (and many threads) share one copy.
///
/// ```
/// use zbp_trace::materialize::MaterializedTrace;
/// use zbp_trace::{profile::WorkloadProfile, Trace};
///
/// let gen = WorkloadProfile::tpf_airline().build(7).with_len(10_000);
/// let mat = MaterializedTrace::capture(&gen);
/// assert_eq!(mat.len(), gen.len());
/// assert!(mat.iter().eq(gen.iter()));
/// ```
#[derive(Debug, Clone)]
pub struct MaterializedTrace {
    name: Arc<str>,
    /// `Arc<Vec<_>>` rather than `Arc<[_]>`: converting a `Vec` into an
    /// `Arc` slice copies the whole buffer into a fresh allocation, and
    /// for multi-megabyte captures that second write costs as much as
    /// the generation walk itself. Wrapping the `Vec` keeps capture a
    /// single allocation + single write at the price of one extra
    /// pointer hop when a replay starts.
    instrs: Arc<Vec<TraceInstr>>,
}

impl MaterializedTrace {
    /// Captures `trace`'s full instruction stream into shared memory.
    ///
    /// The allocation is sized exactly from [`Trace::len`] up front, so
    /// capturing never reallocates mid-stream.
    pub fn capture<T: Trace>(trace: &T) -> Self {
        Self::capture_into(trace, Vec::new())
    }

    /// Captures `trace` into `buf`, reusing `buf`'s existing allocation.
    ///
    /// Capture buffers are tens of megabytes — above the allocator's
    /// mmap threshold — so a fresh buffer per capture is unmapped on
    /// drop and the next capture re-faults every page. Callers that
    /// capture in a loop recover the buffer with [`Self::into_records`]
    /// and pass it back here to keep one warm mapping alive.
    pub fn capture_into<T: Trace>(trace: &T, mut buf: Vec<TraceInstr>) -> Self {
        buf.clear();
        buf.reserve(usize::try_from(trace.len()).unwrap_or(0));
        buf.extend(trace.iter());
        Self { name: trace.name().into(), instrs: Arc::new(buf) }
    }

    /// Captures `trace` only if its stream fits within `max_bytes` of
    /// record storage; returns `None` (caller falls back to on-the-fly
    /// walking) otherwise.
    pub fn capture_within<T: Trace>(trace: &T, max_bytes: u64) -> Option<Self> {
        (Self::estimated_bytes(trace.len()) <= max_bytes).then(|| Self::capture(trace))
    }

    /// Bytes of record storage a stream of `len` instructions occupies
    /// once materialized.
    pub const fn estimated_bytes(len: u64) -> u64 {
        len.saturating_mul(std::mem::size_of::<TraceInstr>() as u64)
    }

    /// Bytes of record storage this capture occupies.
    pub fn bytes(&self) -> u64 {
        Self::estimated_bytes(self.len())
    }

    /// Bytes per captured instruction (the fixed record size).
    pub fn bytes_per_instr(&self) -> f64 {
        std::mem::size_of::<TraceInstr>() as f64
    }

    /// Borrow the captured records.
    pub fn records(&self) -> &[TraceInstr] {
        &self.instrs
    }

    /// Recovers the record buffer for reuse by a later
    /// [`Self::capture_into`]; `None` if clones of this trace are still
    /// alive (the buffer stays shared and is freed when the last clone
    /// drops).
    pub fn into_records(self) -> Option<Vec<TraceInstr>> {
        Arc::try_unwrap(self.instrs).ok()
    }
}

impl Trace for MaterializedTrace {
    type Iter<'a> = std::iter::Copied<std::slice::Iter<'a, TraceInstr>>;

    fn iter(&self) -> Self::Iter<'_> {
        self.instrs.iter().copied()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> u64 {
        self.instrs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    #[test]
    fn capture_matches_source_stream() {
        let gen = WorkloadProfile::tpf_airline().build(3).with_len(5_000);
        let mat = MaterializedTrace::capture(&gen);
        assert_eq!(mat.len(), 5_000);
        assert_eq!(mat.name(), gen.name());
        assert!(mat.iter().eq(gen.iter()));
    }

    #[test]
    fn clones_share_the_allocation() {
        let gen = WorkloadProfile::tpf_airline().build(3).with_len(1_000);
        let mat = MaterializedTrace::capture(&gen);
        let other = mat.clone();
        assert!(std::ptr::eq(mat.records().as_ptr(), other.records().as_ptr()));
    }

    #[test]
    fn empty_capture_is_empty() {
        let gen = WorkloadProfile::tpf_airline().build(3).with_len(0);
        let mat = MaterializedTrace::capture(&gen);
        assert!(mat.is_empty());
        assert_eq!(mat.iter().next(), None);
    }

    #[test]
    fn capture_within_respects_the_budget() {
        let gen = WorkloadProfile::tpf_airline().build(3).with_len(100);
        let need = MaterializedTrace::estimated_bytes(100);
        assert!(MaterializedTrace::capture_within(&gen, need).is_some());
        assert!(MaterializedTrace::capture_within(&gen, need - 1).is_none());
    }

    #[test]
    fn capture_into_reuses_the_buffer_and_into_records_recovers_it() {
        let gen = WorkloadProfile::tpf_airline().build(3).with_len(500);
        let mut buf = Vec::with_capacity(500);
        let ptr = buf.as_ptr();
        buf.extend(gen.iter().take(10)); // stale contents must be discarded
        let mat = MaterializedTrace::capture_into(&gen, buf);
        assert_eq!(mat.len(), 500);
        assert!(mat.iter().eq(gen.iter()), "stale prefix cleared before capture");
        assert!(std::ptr::eq(mat.records().as_ptr(), ptr), "allocation was reused");
        let back = mat.into_records().expect("sole owner recovers the buffer");
        assert!(std::ptr::eq(back.as_ptr(), ptr));
    }

    #[test]
    fn into_records_declines_while_clones_are_alive() {
        let gen = WorkloadProfile::tpf_airline().build(3).with_len(100);
        let mat = MaterializedTrace::capture(&gen);
        let clone = mat.clone();
        assert!(mat.into_records().is_none(), "shared buffer stays shared");
        assert_eq!(clone.len(), 100);
        assert!(clone.into_records().is_some(), "last owner recovers it");
    }

    #[test]
    fn estimated_bytes_scales_with_record_size() {
        let sz = std::mem::size_of::<TraceInstr>() as u64;
        assert_eq!(MaterializedTrace::estimated_bytes(0), 0);
        assert_eq!(MaterializedTrace::estimated_bytes(7), 7 * sz);
        assert_eq!(MaterializedTrace::estimated_bytes(u64::MAX), u64::MAX, "saturates");
    }
}
