//! Persistent on-disk store for compact traces.
//!
//! Synthetic workloads are deterministic, so a compact capture of
//! `(profile, seed, len)` never changes — yet every grid run used to
//! regenerate and re-encode it from scratch. [`TraceStore`] persists the
//! capture once and serves every later replay with a single file read
//! into the same structure-of-streams buffers the encoder fills,
//! amortizing generation and encoding to zero across sessions.
//!
//! The design mirrors the experiment cell cache: entries live under a
//! directory as `{fnv1a_64_hex(key)}.zbpc`, the full key string is
//! embedded in the file so hash collisions read as misses rather than
//! wrong data, writes go through a temp file + atomic rename so a
//! crashed writer never leaves a half-entry behind, and a corrupt entry
//! is reported loudly on stderr — naming the offending byte offset or
//! stream digest — deleted, and treated as a miss so the caller
//! regenerates it.
//!
//! # File format (little-endian)
//!
//! ```text
//! magic "ZBPC" | version u32 | key_len u32, key | name_len u32, name
//! start u64 | total u64 | tail_gap u64
//! n_points u64 | n_code_bytes u64 | n_far u64
//! fnv1a64(points) | fnv1a64(codes) | fnv1a64(far)      per-stream digests
//! points  n_points x (gap u32, target_delta i32, flags u16)
//! codes   n_code_bytes
//! far     n_far x u64
//! ```
//!
//! Integrity is layered: the declared counts must account for the file
//! size exactly (so a flipped count byte cannot trigger a bogus
//! allocation), each stream's FNV-1a digest must match before decode,
//! and [`CompactTrace::from_parts`] re-checks the structural invariants
//! replay relies on. A load that passes all three replays bit-identically
//! to the capture that wrote it.

use crate::compact::{BranchPoint, CompactParts, CompactTrace, PartsError};
use crate::InstAddr;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use zbp_support::hash::{fnv1a_64, fnv1a_64_hex};

const MAGIC: &[u8; 4] = b"ZBPC";

/// On-disk schema version; bump on any layout change. The version is
/// also folded into the key rendering, so entries written by a
/// different schema miss by filename before they are ever opened.
pub const STORE_VERSION: u32 = 1;

/// Serialized bytes per branch point (`gap`, `target_delta`, `flags` —
/// no padding, unlike the in-memory `repr(C)` layout).
const POINT_BYTES: usize = 10;

/// Identity of one stored trace: the full workload description rendered
/// into a stable string, plus its FNV-1a digest (the filename).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStoreKey {
    rendered: String,
    digest: String,
}

impl TraceStoreKey {
    /// Key for a deterministic workload capture: the profile's full
    /// JSON rendering plus the generation seed and stream length.
    pub fn workload(profile_json: &str, seed: u64, len: u64) -> Self {
        let rendered =
            format!("zbp-trace-v{STORE_VERSION}|seed={seed}|len={len}|profile={profile_json}");
        let digest = fnv1a_64_hex(&rendered);
        Self { rendered, digest }
    }

    /// Key for an external ingested trace: identity is the FNV-1a
    /// digest of the raw trace-file bytes plus the replay length cap.
    /// No seed — replay of a recorded stream is seed-independent — and
    /// a distinct namespace so an external entry can never alias a
    /// synthetic one.
    pub fn external(content_fnv: u64, len: u64) -> Self {
        let rendered =
            format!("zbp-trace-v{STORE_VERSION}|external|content_fnv={content_fnv:016x}|len={len}");
        let digest = fnv1a_64_hex(&rendered);
        Self { rendered, digest }
    }

    /// The full rendered key (embedded in the entry for collision
    /// detection).
    pub fn rendered(&self) -> &str {
        &self.rendered
    }

    /// 16-hex-digit digest — the entry's file stem.
    pub fn digest(&self) -> &str {
        &self.digest
    }
}

/// Load failure for a single store entry. `load` handles these
/// internally (warn + delete + miss); the type is public so the format
/// tests can assert the precise failure mode.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `ZBPC` magic.
    BadMagic,
    /// Unsupported store schema version.
    BadVersion(u32),
    /// The file ends before a field that starts at `offset`.
    Truncated {
        /// Byte offset the unreadable field starts at.
        offset: u64,
        /// Bytes the field needs.
        need: u64,
        /// Bytes remaining in the file.
        have: u64,
    },
    /// Declared stream counts do not account for the file size.
    SizeMismatch {
        /// File size the header's counts imply.
        expected: u64,
        /// Actual file size.
        got: u64,
    },
    /// A stream's content digest does not match its header digest.
    DigestMismatch {
        /// Which stream failed (`points` / `codes` / `far`).
        stream: &'static str,
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the bytes actually read.
        got: u64,
    },
    /// Streams decoded cleanly but violate replay invariants.
    Inconsistent(PartsError),
    /// The embedded name is not UTF-8.
    BadName,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "missing ZBPC magic"),
            StoreError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::Truncated { offset, need, have } => {
                write!(
                    f,
                    "truncated at byte offset {offset}: field needs {need} bytes, {have} remain"
                )
            }
            StoreError::SizeMismatch { expected, got } => {
                write!(f, "header counts imply {expected} bytes, file holds {got}")
            }
            StoreError::DigestMismatch { stream, expected, got } => write!(
                f,
                "{stream} stream digest mismatch: header {expected:016x}, content {got:016x}"
            ),
            StoreError::Inconsistent(e) => write!(f, "inconsistent streams: {e}"),
            StoreError::BadName => write!(f, "embedded trace name is not UTF-8"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Inconsistent(e) => Some(e),
            _ => None,
        }
    }
}

/// Hit/miss counters of a [`TraceStore`], snapshotted for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Loads served from disk.
    pub hits: u64,
    /// Loads that fell back to generation (absent, corrupt, collided,
    /// or the store was opened write-only).
    pub misses: u64,
}

impl TraceStoreStats {
    /// Counters accumulated since the `before` snapshot.
    pub fn since(self, before: TraceStoreStats) -> TraceStoreStats {
        TraceStoreStats { hits: self.hits - before.hits, misses: self.misses - before.misses }
    }
}

/// A directory of persisted compact traces (see the module docs).
///
/// Thread-safe: loads and stores from parallel workload rows only touch
/// distinct entry files, and the counters are atomic.
#[derive(Debug, Default)]
pub struct TraceStore {
    dir: Option<PathBuf>,
    read: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceStore {
    /// A read/write store rooted at `dir` (created on first write).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self { dir: Some(dir.into()), read: true, ..Self::default() }
    }

    /// A store that ignores existing entries but rewrites them — the
    /// `--fresh-traces` mode. Every load is a (counted) miss.
    pub fn write_only(dir: impl Into<PathBuf>) -> Self {
        Self { dir: Some(dir.into()), read: false, ..Self::default() }
    }

    /// A disabled store: loads miss silently, stores are dropped, and
    /// no counters move.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether the store is backed by a directory at all.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Whether loads consult disk (false for `write_only`).
    pub fn reads(&self) -> bool {
        self.read && self.is_enabled()
    }

    /// The backing directory, if enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Path the entry for `key` lives at, if the store is enabled.
    pub fn path_for(&self, key: &TraceStoreKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.zbpc", key.digest())))
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Attempts to load the trace stored under `key`, filling the
    /// recycled `parts` buffers. On any miss — absent, write-only,
    /// collided, or corrupt (the latter warns on stderr and deletes the
    /// entry so the caller's regeneration heals the store) — the
    /// buffers come back for the fallback capture.
    pub fn load(
        &self,
        key: &TraceStoreKey,
        parts: CompactParts,
    ) -> Result<CompactTrace, CompactParts> {
        if !self.is_enabled() {
            return Err(parts);
        }
        if !self.read {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Err(parts);
        }
        let path = self.path_for(key).expect("enabled store has a directory");
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    eprintln!(
                        "warning: trace store entry {} unreadable ({e}); regenerating",
                        path.display()
                    );
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Err(parts);
            }
        };
        match decode_entry(&data, Some(key), parts) {
            Ok(Some(trace)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(trace)
            }
            Ok(None) => {
                // Digest collision: a different key owns this file.
                // Leave it for its owner and regenerate ours.
                self.misses.fetch_add(1, Ordering::Relaxed);
                Err(CompactParts::default())
            }
            Err(e) => {
                // Warn only when this process actually removed the
                // damaged file: a NotFound delete means a concurrent
                // reader of the same corrupt entry recovered it first
                // (it vanished between our read and our delete), and
                // repeating its warning would report an already-fixed
                // problem.
                match std::fs::remove_file(&path) {
                    Err(rm) if rm.kind() == io::ErrorKind::NotFound => {}
                    _ => eprintln!(
                        "warning: trace store entry {} is corrupt ({e}); deleting and regenerating",
                        path.display()
                    ),
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                Err(CompactParts::default())
            }
        }
    }

    /// Persists `trace` under `key` (no-op when disabled). Failures are
    /// reported on stderr but never abort the run — the store is an
    /// accelerator, not a dependency.
    pub fn store(&self, key: &TraceStoreKey, trace: &CompactTrace) {
        let Some(dir) = &self.dir else { return };
        let Some(path) = self.path_for(key) else { return };
        if let Err(e) = write_atomic(dir, &path, key, trace) {
            eprintln!("warning: trace store write {} failed: {e}", path.display());
        }
    }
}

/// Serializes `trace` into the on-disk entry layout.
pub fn encode_entry(key: &TraceStoreKey, trace: &CompactTrace) -> Vec<u8> {
    let points = trace.branch_points();
    let codes = trace.len_code_stream();
    let far = trace.far_stream();
    let key_bytes = key.rendered().as_bytes();
    let name_bytes = crate::Trace::name(trace).as_bytes();

    let mut point_bytes = Vec::with_capacity(points.len() * POINT_BYTES);
    for p in points {
        point_bytes.extend_from_slice(&p.gap.to_le_bytes());
        point_bytes.extend_from_slice(&p.target_delta.to_le_bytes());
        point_bytes.extend_from_slice(&p.flags.to_le_bytes());
    }
    let mut far_bytes = Vec::with_capacity(far.len() * 8);
    for w in far {
        far_bytes.extend_from_slice(&w.to_le_bytes());
    }

    let mut out = Vec::with_capacity(
        4 + 4
            + 4
            + key_bytes.len()
            + 4
            + name_bytes.len()
            + 9 * 8
            + point_bytes.len()
            + codes.len()
            + far_bytes.len(),
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&(key_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(key_bytes);
    out.extend_from_slice(&(name_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(name_bytes);
    out.extend_from_slice(&trace.start_addr().raw().to_le_bytes());
    out.extend_from_slice(&crate::Trace::len(trace).to_le_bytes());
    out.extend_from_slice(&trace.tail_gap().to_le_bytes());
    out.extend_from_slice(&(points.len() as u64).to_le_bytes());
    out.extend_from_slice(&(codes.len() as u64).to_le_bytes());
    out.extend_from_slice(&(far.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(&point_bytes).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(codes).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(&far_bytes).to_le_bytes());
    out.extend_from_slice(&point_bytes);
    out.extend_from_slice(codes);
    out.extend_from_slice(&far_bytes);
    out
}

/// Parses a serialized entry. Returns `Ok(None)` when `expect_key` is
/// given and the embedded key differs (digest collision — not
/// corruption). The recycled `parts` buffers back the decoded streams.
pub fn decode_entry(
    data: &[u8],
    expect_key: Option<&TraceStoreKey>,
    parts: CompactParts,
) -> Result<Option<CompactTrace>, StoreError> {
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32()?;
    if version != STORE_VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let key_len = r.u32()? as u64;
    let key = r.take(key_len)?;
    if let Some(expect) = expect_key {
        if key != expect.rendered().as_bytes() {
            return Ok(None);
        }
    }
    let name_len = r.u32()? as u64;
    let name = std::str::from_utf8(r.take(name_len)?).map_err(|_| StoreError::BadName)?.to_owned();
    let start = InstAddr::new(r.u64()?);
    let total = r.u64()?;
    let tail_gap = r.u64()?;
    let n_points = r.u64()?;
    let n_codes = r.u64()?;
    let n_far = r.u64()?;
    let digest_points = r.u64()?;
    let digest_codes = r.u64()?;
    let digest_far = r.u64()?;

    // The counts must account for the remaining bytes exactly, so a
    // flipped count byte fails here instead of driving an allocation.
    let body = n_points
        .checked_mul(POINT_BYTES as u64)
        .and_then(|b| b.checked_add(n_codes))
        .and_then(|b| n_far.checked_mul(8).and_then(|f| b.checked_add(f)))
        .ok_or(StoreError::SizeMismatch { expected: u64::MAX, got: data.len() as u64 })?;
    let expected_size = r.pos + body;
    if expected_size != data.len() as u64 {
        return Err(StoreError::SizeMismatch { expected: expected_size, got: data.len() as u64 });
    }

    let point_bytes = r.take(n_points * POINT_BYTES as u64)?;
    let code_bytes = r.take(n_codes)?;
    let far_bytes = r.take(n_far * 8)?;
    for (stream, bytes, expected) in [
        ("points", point_bytes, digest_points),
        ("codes", code_bytes, digest_codes),
        ("far", far_bytes, digest_far),
    ] {
        let got = fnv1a_64(bytes);
        if got != expected {
            return Err(StoreError::DigestMismatch { stream, expected, got });
        }
    }

    let (mut points, mut len_codes, mut far) = parts.into_buffers();
    points.clear();
    points.reserve(point_bytes.len() / POINT_BYTES);
    for c in point_bytes.chunks_exact(POINT_BYTES) {
        points.push(BranchPoint {
            gap: u32::from_le_bytes(c[0..4].try_into().unwrap()),
            target_delta: i32::from_le_bytes(c[4..8].try_into().unwrap()),
            flags: u16::from_le_bytes(c[8..10].try_into().unwrap()),
        });
    }
    len_codes.clear();
    len_codes.extend_from_slice(code_bytes);
    far.clear();
    far.reserve(far_bytes.len() / 8);
    for c in far_bytes.chunks_exact(8) {
        far.push(u64::from_le_bytes(c.try_into().unwrap()));
    }

    CompactTrace::from_parts(&name, start, total, tail_gap, points, len_codes, far)
        .map(Some)
        .map_err(StoreError::Inconsistent)
}

fn write_atomic(
    dir: &Path,
    path: &Path,
    key: &TraceStoreKey,
    trace: &CompactTrace,
) -> io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}-{}",
        key.digest(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let bytes = encode_entry(key, trace);
    std::fs::write(&tmp, &bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Bounds-checked little-endian slice reader tracking its offset, so
/// truncation errors can name the exact byte the parse died at.
struct Reader<'a> {
    data: &'a [u8],
    pos: u64,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: u64) -> Result<&'a [u8], StoreError> {
        let have = self.data.len() as u64 - self.pos;
        if n > have {
            return Err(StoreError::Truncated { offset: self.pos, need: n, have });
        }
        let start = self.pos as usize;
        self.pos += n;
        Ok(&self.data[start..start + n as usize])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::{FLAG_DISC, FLAG_FAR, FLAG_TAKEN, KIND_PLAIN};
    use crate::profile::WorkloadProfile;
    use crate::Trace;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("zbp-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_trace(len: u64) -> CompactTrace {
        let p = WorkloadProfile::zos_lspr_cb84();
        CompactTrace::capture(&p.build(7).with_len(len)).unwrap()
    }

    fn assert_identical(a: &CompactTrace, b: &CompactTrace) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.start_addr(), b.start_addr());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.tail_gap(), b.tail_gap());
        assert_eq!(a.branch_points(), b.branch_points());
        assert_eq!(a.len_code_stream(), b.len_code_stream());
        assert_eq!(a.far_stream(), b.far_stream());
    }

    #[test]
    fn roundtrips_and_counts_hit() {
        let dir = scratch("roundtrip");
        let store = TraceStore::at(&dir);
        let key = TraceStoreKey::workload("{\"p\":1}", 7, 5_000);
        let trace = sample_trace(5_000);

        // Cold: miss, then populate.
        let parts = store.load(&key, CompactParts::default()).unwrap_err();
        store.store(&key, &trace);
        let loaded = store.load(&key, parts).expect("warm load hits");
        assert_identical(&trace, &loaded);
        assert_eq!(store.stats(), TraceStoreStats { hits: 1, misses: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn collision_misses_and_keeps_owner_file() {
        let dir = scratch("collision");
        let store = TraceStore::at(&dir);
        let owner = TraceStoreKey::workload("{\"p\":1}", 7, 2_000);
        let trace = sample_trace(2_000);
        store.store(&owner, &trace);
        // Forge a key that maps to the owner's file but renders differently.
        let intruder =
            TraceStoreKey { rendered: "something else".into(), digest: owner.digest().into() };
        assert!(store.load(&intruder, CompactParts::default()).is_err());
        // The owner's entry survives and still hits.
        assert!(store.load(&owner, CompactParts::default()).is_ok());
        assert_eq!(store.stats(), TraceStoreStats { hits: 1, misses: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_warns_deletes_and_regenerates() {
        let dir = scratch("truncate");
        let store = TraceStore::at(&dir);
        let key = TraceStoreKey::workload("{\"p\":2}", 9, 3_000);
        store.store(&key, &sample_trace(3_000));
        let path = store.path_for(&key).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        assert!(store.load(&key, CompactParts::default()).is_err());
        assert!(!path.exists(), "corrupt entry must be deleted");
        // The caller's regeneration heals the store.
        store.store(&key, &sample_trace(3_000));
        assert!(store.load(&key, CompactParts::default()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_stream_is_a_digest_mismatch() {
        let key = TraceStoreKey::workload("{\"p\":3}", 3, 4_000);
        let trace = sample_trace(4_000);
        let mut data = encode_entry(&key, &trace);
        let n = data.len();
        data[n - 1] ^= 0x40; // flip a bit in the last stream byte
        let err = decode_entry(&data, Some(&key), CompactParts::default()).unwrap_err();
        assert!(matches!(err, StoreError::DigestMismatch { .. }), "got {err}");
        assert!(err.to_string().contains("digest mismatch"));
    }

    #[test]
    fn count_corruption_is_a_size_mismatch_not_an_allocation() {
        let key = TraceStoreKey::workload("{\"p\":4}", 3, 1_000);
        let mut data = encode_entry(&key, &sample_trace(1_000));
        // n_points lives right after start/total/tail_gap; blow it up.
        let off = 4 + 4 + 4 + key.rendered().len() + 4 + sample_trace(1_000).name().len() + 24;
        data[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_entry(&data, Some(&key), CompactParts::default()).unwrap_err();
        assert!(matches!(err, StoreError::SizeMismatch { .. }), "got {err}");
    }

    #[test]
    fn truncated_header_names_the_offset() {
        let key = TraceStoreKey::workload("{\"p\":5}", 3, 1_000);
        let data = encode_entry(&key, &sample_trace(1_000));
        let err = decode_entry(&data[..10], Some(&key), CompactParts::default()).unwrap_err();
        match err {
            StoreError::Truncated { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected Truncated, got {other}"),
        }
        assert!(err.to_string().contains("offset 8"));
    }

    #[test]
    fn write_only_always_misses_but_persists() {
        let dir = scratch("writeonly");
        let key = TraceStoreKey::workload("{\"p\":6}", 3, 2_000);
        let trace = sample_trace(2_000);
        {
            let fresh = TraceStore::write_only(&dir);
            fresh.store(&key, &trace);
            assert!(fresh.load(&key, CompactParts::default()).is_err());
            assert_eq!(fresh.stats(), TraceStoreStats { hits: 0, misses: 1 });
        }
        let warm = TraceStore::at(&dir);
        let loaded = warm.load(&key, CompactParts::default()).expect("entry persisted");
        assert_identical(&trace, &loaded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_is_inert() {
        let store = TraceStore::disabled();
        assert!(!store.is_enabled());
        assert!(!store.reads());
        let key = TraceStoreKey::workload("{}", 1, 10);
        assert!(store.path_for(&key).is_none());
        store.store(&key, &sample_trace(500));
        assert!(store.load(&key, CompactParts::default()).is_err());
        assert_eq!(store.stats(), TraceStoreStats::default());
    }

    #[test]
    fn hand_built_disc_and_far_escapes_roundtrip() {
        // A synthetic parts set exercising every escape the encoder can
        // emit: a far target word, a discontinuity (the shape a
        // gap-overflow split produces) and a taken point.
        let points = vec![
            // Indirect taken branch whose target spilled to the far stream.
            BranchPoint { gap: 3, target_delta: 0, flags: 4 | FLAG_TAKEN | FLAG_FAR },
            // Discontinuity — the shape a gap-overflow split produces.
            BranchPoint { gap: 2, target_delta: 0, flags: KIND_PLAIN | FLAG_DISC },
            // Conditional taken with an in-line delta.
            BranchPoint { gap: 1, target_delta: -24, flags: FLAG_TAKEN },
        ];
        let total: u64 = 3 + 1 + 2 + 1 + 1 + 2; // gaps + consuming points + tail
        let len_codes =
            vec![0b01_01_01_01u8, 0b01_01_01_01, 0b01_01][..(total as usize).div_ceil(4)].to_vec();
        let far = vec![0xFFFF_FFFF_0000_1000, 0x2000];
        let trace = CompactTrace::from_parts(
            "escapes",
            InstAddr::new(0x4000),
            total,
            2,
            points,
            len_codes,
            far,
        )
        .expect("consistent parts");
        let key = TraceStoreKey::workload("{\"escapes\":true}", 1, total);
        let data = encode_entry(&key, &trace);
        let back = decode_entry(&data, Some(&key), CompactParts::default()).unwrap().unwrap();
        assert_identical(&trace, &back);
    }

    #[test]
    fn key_embeds_version_and_inputs() {
        let a = TraceStoreKey::workload("{\"p\":1}", 7, 100);
        assert!(a.rendered().contains("seed=7"));
        assert!(a.rendered().contains(&format!("zbp-trace-v{STORE_VERSION}")));
        assert_eq!(a.digest().len(), 16);
        assert_ne!(a.digest(), TraceStoreKey::workload("{\"p\":1}", 8, 100).digest());
        assert_ne!(a.digest(), TraceStoreKey::workload("{\"p\":1}", 7, 101).digest());
        assert_ne!(a.digest(), TraceStoreKey::workload("{\"p\":2}", 7, 100).digest());
    }
}
