//! Workload profiles matching the paper's Table 4.
//!
//! Each profile records the published unique-branch / unique-taken-branch
//! footprint of one evaluation trace and knows how to synthesize a
//! matching workload ([`WorkloadProfile::build`]). Trace 5 and the two
//! hardware workloads are time-sliced mixes (see [`crate::gen::mix`]).

use crate::gen::layout::LayoutParams;
use crate::gen::mix::{MixIter, MixTrace};
use crate::gen::walker::Walker;
use crate::gen::GenTrace;
use crate::{Trace, TraceInstr};

/// One footprint component of a workload (a mix has several).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintPart {
    /// Component label.
    pub label: String,
    /// Target unique branch instruction addresses.
    pub sites: u32,
    /// Target unique ever-taken branch instruction addresses.
    pub taken: u32,
}

impl FootprintPart {
    fn new(label: &str, sites: u32, taken: u32) -> Self {
        Self { label: label.into(), sites, taken }
    }
}

/// A named workload profile from the paper's evaluation.
///
/// ```
/// use zbp_trace::{profile::WorkloadProfile, Trace};
/// let p = WorkloadProfile::tpf_airline();
/// let trace = p.build(1).with_len(5_000);
/// assert_eq!(trace.iter().count(), 5_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Trace name as printed in Table 4.
    pub name: String,
    /// Footprint components (one, or several for time-sliced mixes).
    pub parts: Vec<FootprintPart>,
    /// Instructions per time slice when `parts.len() > 1`.
    pub slice_len: u64,
    /// Default dynamic trace length.
    pub default_len: u64,
}

/// Address-space stride between the components of a mix (1 GB keeps the
/// footprints disjoint while still aliasing in the BTB index bits).
const PART_STRIDE: u64 = 0x4000_0000;

/// Fraction of the generated (reachable) branch sites a full-length walk
/// actually executes, measured over the 13 Table-4 workloads at their
/// default lengths. The generator overshoots its site target by the
/// inverse so the *trace* lands on the published unique-branch counts.
const DYNAMIC_SITE_COVERAGE: f64 = 0.73;

/// Same calibration for ever-taken sites (slightly lower: rarely-taken
/// sites need more executions before their first taken outcome).
const DYNAMIC_TAKEN_COVERAGE: f64 = 0.67;

impl WorkloadProfile {
    /// A single-component profile.
    pub fn single(name: &str, sites: u32, taken: u32) -> Self {
        let default_len = default_len_for(sites as u64);
        Self {
            name: name.into(),
            parts: vec![FootprintPart::new(name, sites, taken)],
            slice_len: 75_000,
            default_len,
        }
    }

    /// A time-sliced mix of several footprints.
    pub fn mixed(name: &str, parts: Vec<FootprintPart>, slice_len: u64) -> Self {
        let sites: u64 = parts.iter().map(|p| p.sites as u64).sum();
        Self { name: name.into(), parts, slice_len, default_len: default_len_for(sites) }
    }

    /// Total target unique branch addresses across all parts.
    pub fn unique_branches(&self) -> u32 {
        self.parts.iter().map(|p| p.sites).sum()
    }

    /// Total target unique ever-taken branch addresses.
    pub fn unique_taken(&self) -> u32 {
        self.parts.iter().map(|p| p.taken).sum()
    }

    /// Synthesizes the workload with the profile's default length.
    pub fn build(&self, seed: u64) -> ProfileTrace {
        self.build_with_len(seed, self.default_len)
    }

    /// Synthesizes the workload with an explicit dynamic length.
    pub fn build_with_len(&self, seed: u64, len: u64) -> ProfileTrace {
        let mut gens = Vec::with_capacity(self.parts.len());
        for (i, part) in self.parts.iter().enumerate() {
            // Compensate for the walk's partial dynamic coverage so the
            // produced trace matches the published Table-4 counts.
            let gen_sites = (part.sites as f64 / DYNAMIC_SITE_COVERAGE) as u32;
            let gen_taken = ((part.taken as f64 / DYNAMIC_TAKEN_COVERAGE) as u32)
                .min((gen_sites as f64 * 0.90) as u32);
            let params = LayoutParams {
                base_addr: 0x0100_0000 + i as u64 * PART_STRIDE,
                // Phases must outlive one round-robin round of the active
                // working set, which scales with the footprint — else
                // ranges retire before the walk has cycled them and large
                // workloads under-cover their Table-4 counts.
                phase_len: (u64::from(gen_sites) * 8).max(400_000),
                ..LayoutParams::for_footprint(gen_sites, gen_taken)
            };
            // Distinct seeds per part so mixes are not in lockstep.
            let part_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
            gens.push(GenTrace::new(part.label.clone(), &params, part_seed, len));
        }
        if gens.len() == 1 {
            ProfileTrace::Single(gens.pop().expect("one part").with_len(len))
        } else {
            ProfileTrace::Mix(MixTrace::new(self.name.clone(), gens, self.slice_len, len))
        }
    }

    // ----- Table 4 presets -------------------------------------------------

    /// Trace 1: Z/OS LSPR CB84 (15,244 / 10,963).
    pub fn zos_lspr_cb84() -> Self {
        Self::single("Z/OS LSPR CB84", 15_244, 10_963)
    }

    /// Trace 2: Z/OS LSPR CICS/DB2 (40,667 / 27,500).
    pub fn zos_lspr_cics_db2() -> Self {
        Self::single("Z/OS LSPR CICS/DB2", 40_667, 27_500)
    }

    /// Trace 3: Z/OS LSPR IMS (29,692 / 19,673).
    pub fn zos_lspr_ims() -> Self {
        Self::single("Z/OS LSPR IMS", 29_692, 19_673)
    }

    /// Trace 4: Z/OS LSPR CB-L (25,622 / 16,612).
    pub fn zos_lspr_cbl() -> Self {
        Self::single("Z/OS LSPR CB-L", 25_622, 16_612)
    }

    /// Trace 5: Z/OS LSPR WASDB+CBW2 (114,955 / 51,371) — a time-sliced
    /// mix of two LSPR workloads on one processor.
    pub fn zos_lspr_wasdb_cbw2() -> Self {
        Self::mixed(
            "Z/OS LSPR WASDB+CBW2",
            vec![
                FootprintPart::new("WASDB", 80_000, 36_200),
                FootprintPart::new("CBW2", 34_955, 15_171),
            ],
            75_000,
        )
    }

    /// Trace 6: Z/OS Trade6 (115,509 / 56,017).
    pub fn zos_trade6() -> Self {
        Self::single("Z/OS Trade6", 115_509, 56_017)
    }

    /// Trace 7: TPF airline reservations (11,160 / 9,317).
    pub fn tpf_airline() -> Self {
        Self::single("TPF airline reservations", 11_160, 9_317)
    }

    /// Trace 8: Z/OS AppServ benchmark (26,340 / 16,980).
    pub fn zos_appserv() -> Self {
        Self::single("Z/OS AppServ benchmark", 26_340, 16_980)
    }

    /// Trace 9: Z/OS DBServ benchmark (38,655 / 20,020).
    pub fn zos_dbserv() -> Self {
        Self::single("Z/OS DBServ benchmark", 38_655, 20_020)
    }

    /// Trace 10: Z/OS DayTrader AppServ (67,336 / 30,165).
    pub fn daytrader_appserv() -> Self {
        Self::single("Z/OS DayTrader AppServ", 67_336, 30_165)
    }

    /// Trace 11: Z/OS DayTrader DBServ (34,819 / 22,217) — the paper's
    /// headline trace (13.8 % CPI improvement from the BTB2).
    pub fn daytrader_dbserv() -> Self {
        Self::single("Z/OS DayTrader DBServ", 34_819, 22_217)
    }

    /// Trace 12: zLinux Informix (16,810 / 11,765).
    pub fn zlinux_informix() -> Self {
        Self::single("zLinux Informix", 16_810, 11_765)
    }

    /// Trace 13: zLinux Trade6 (69,847 / 31,897).
    pub fn zlinux_trade6() -> Self {
        Self::single("zLinux Trade6", 69_847, 31_897)
    }

    /// All 13 Table-4 traces, in the paper's order.
    pub fn all_table4() -> Vec<Self> {
        vec![
            Self::zos_lspr_cb84(),
            Self::zos_lspr_cics_db2(),
            Self::zos_lspr_ims(),
            Self::zos_lspr_cbl(),
            Self::zos_lspr_wasdb_cbw2(),
            Self::zos_trade6(),
            Self::tpf_airline(),
            Self::zos_appserv(),
            Self::zos_dbserv(),
            Self::daytrader_appserv(),
            Self::daytrader_dbserv(),
            Self::zlinux_informix(),
            Self::zlinux_trade6(),
        ]
    }

    // ----- Hardware-measurement workloads (Figure 3) -----------------------

    /// The WASDB+CBW2 workload as run on zEC12 hardware (single core);
    /// identical to trace 5.
    pub fn hardware_wasdb_cbw2() -> Self {
        let mut p = Self::zos_lspr_wasdb_cbw2();
        p.name = "WASDB+CBW2 (1 core)".into();
        p
    }

    /// The Web CICS/DB2 workload as run on 4 zEC12 cores: modelled as four
    /// CICS/DB2-like contexts time-sliced onto one simulated core.
    pub fn hardware_web_cics_db2() -> Self {
        let parts = (0..4)
            .map(|i| FootprintPart::new(&format!("Web CICS/DB2 ctx{i}"), 40_667, 27_500))
            .collect();
        Self::mixed("Web CICS/DB2 (4 cores)", parts, 40_000)
    }

    /// Both Figure-3 hardware-measurement workloads, in the paper's order.
    pub fn hardware_pair() -> Vec<Self> {
        vec![Self::hardware_wasdb_cbw2(), Self::hardware_web_cics_db2()]
    }
}

fn default_len_for(sites: u64) -> u64 {
    (sites * 110).max(4_000_000)
}

/// A built workload: either a single generated walk or a time-sliced mix.
#[derive(Debug, Clone)]
pub enum ProfileTrace {
    /// Single-component workload.
    Single(GenTrace),
    /// Time-sliced mix.
    Mix(MixTrace),
}

impl ProfileTrace {
    /// Returns the same workload with a different dynamic length.
    #[must_use]
    pub fn with_len(self, len: u64) -> Self {
        match self {
            ProfileTrace::Single(t) => ProfileTrace::Single(t.with_len(len)),
            ProfileTrace::Mix(t) => ProfileTrace::Mix(t.with_len(len)),
        }
    }
}

impl Trace for ProfileTrace {
    type Iter<'a> = ProfileIter<'a>;

    fn iter(&self) -> Self::Iter<'_> {
        match self {
            ProfileTrace::Single(t) => ProfileIter::Single(t.iter()),
            ProfileTrace::Mix(t) => ProfileIter::Mix(t.iter()),
        }
    }

    fn name(&self) -> &str {
        match self {
            ProfileTrace::Single(t) => t.name(),
            ProfileTrace::Mix(t) => t.name(),
        }
    }

    fn len(&self) -> u64 {
        match self {
            ProfileTrace::Single(t) => t.len(),
            ProfileTrace::Mix(t) => t.len(),
        }
    }
}

/// Iterator over a [`ProfileTrace`].
#[derive(Debug, Clone)]
pub enum ProfileIter<'a> {
    /// Single-component stream.
    Single(Walker<'a>),
    /// Mixed stream.
    Mix(MixIter<'a>),
}

impl Iterator for ProfileIter<'_> {
    type Item = TraceInstr;

    fn next(&mut self) -> Option<TraceInstr> {
        match self {
            ProfileIter::Single(w) => w.next(),
            ProfileIter::Mix(m) => m.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ProfileIter::Single(w) => w.size_hint(),
            ProfileIter::Mix(m) => m.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_13_traces_with_paper_counts() {
        let all = WorkloadProfile::all_table4();
        assert_eq!(all.len(), 13);
        assert_eq!(all[0].unique_branches(), 15_244);
        assert_eq!(all[0].unique_taken(), 10_963);
        assert_eq!(all[4].unique_branches(), 114_955);
        assert_eq!(all[4].unique_taken(), 51_371);
        assert_eq!(all[10].name, "Z/OS DayTrader DBServ");
        assert_eq!(all[10].unique_branches(), 34_819);
        for p in &all {
            assert!(p.unique_taken() <= p.unique_branches());
            assert!(p.default_len >= 3_000_000);
        }
    }

    #[test]
    fn build_produces_requested_length() {
        let p = WorkloadProfile::tpf_airline();
        let t = p.build_with_len(3, 2_000);
        assert_eq!(t.iter().count(), 2_000);
        assert_eq!(t.name(), "TPF airline reservations");
    }

    #[test]
    fn mix_profile_builds_a_mix() {
        let p = WorkloadProfile::zos_lspr_wasdb_cbw2();
        let t = p.build_with_len(3, 1_000);
        assert!(matches!(t, ProfileTrace::Mix(_)));
        assert_eq!(t.iter().count(), 1_000);
    }

    #[test]
    fn mix_parts_use_disjoint_address_spaces() {
        let p = WorkloadProfile::zos_lspr_wasdb_cbw2();
        let t = p.build_with_len(5, 160_000);
        let (mut lo, mut hi) = (false, false);
        for i in t.iter() {
            if i.addr.raw() < PART_STRIDE {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi, "both parts must contribute");
    }

    #[test]
    fn with_len_rebuilds() {
        let p = WorkloadProfile::zlinux_informix();
        let t = p.build_with_len(3, 500).with_len(700);
        assert_eq!(t.iter().count(), 700);
    }

    #[test]
    fn hardware_profiles() {
        let one = WorkloadProfile::hardware_wasdb_cbw2();
        assert_eq!(one.parts.len(), 2);
        let four = WorkloadProfile::hardware_web_cics_db2();
        assert_eq!(four.parts.len(), 4);
        assert_eq!(four.unique_branches(), 4 * 40_667);
    }

    #[test]
    fn profiles_serialize() {
        let p = WorkloadProfile::zos_dbserv();
        let json = zbp_support::json::to_string(&p);
        let back: WorkloadProfile = zbp_support::json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

zbp_support::impl_json_struct!(FootprintPart { label, sites, taken });
zbp_support::impl_json_struct!(WorkloadProfile { name, parts, slice_len, default_len });
