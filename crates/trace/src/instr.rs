//! Dynamic trace instruction records.

use crate::addr::InstAddr;
use crate::branch::{BranchKind, BranchRec};

/// One dynamic instruction in a trace.
///
/// z/Architecture instructions are 2, 4 or 6 bytes long; [`TraceInstr::len`]
/// records the actual length so the simulator's sequential fetch and the
/// predictor's search-address arithmetic see realistic spacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceInstr {
    /// Instruction address.
    pub addr: InstAddr,
    /// Instruction length in bytes (2, 4 or 6).
    pub len: u8,
    /// Wrong-path marker: the instruction was fetched speculatively down
    /// a mispredicted path and never retired. Hardware traces interleave
    /// such records with the committed stream; the core skips them during
    /// replay and they never advance the architectural flow.
    pub wrong_path: bool,
    /// Branch data if this instruction is a branch.
    pub branch: Option<BranchRec>,
}

impl TraceInstr {
    /// A non-branch instruction.
    pub const fn plain(addr: InstAddr, len: u8) -> Self {
        Self { addr, len, wrong_path: false, branch: None }
    }

    /// A branch instruction with a resolved outcome.
    pub const fn branch(addr: InstAddr, len: u8, rec: BranchRec) -> Self {
        Self { addr, len, wrong_path: false, branch: Some(rec) }
    }

    /// Marks the instruction as wrong-path (builder style).
    pub const fn wrong_path(mut self) -> Self {
        self.wrong_path = true;
        self
    }

    /// Whether this instruction is a branch.
    pub const fn is_branch(&self) -> bool {
        self.branch.is_some()
    }

    /// Whether this instruction is a taken branch.
    pub fn is_taken_branch(&self) -> bool {
        self.branch.is_some_and(|b| b.taken)
    }

    /// Address of the *next* instruction actually executed: the branch
    /// target for taken branches, the sequential successor otherwise.
    pub fn next_addr(&self) -> InstAddr {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.addr.add(self.len as u64),
        }
    }

    /// Sequential successor address (fall-through), regardless of outcome.
    pub fn fallthrough(&self) -> InstAddr {
        self.addr.add(self.len as u64)
    }

    /// Branch kind if this is a branch.
    pub fn branch_kind(&self) -> Option<BranchKind> {
        self.branch.map(|b| b.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_instruction_flows_sequentially() {
        let i = TraceInstr::plain(InstAddr::new(0x100), 6);
        assert!(!i.is_branch());
        assert!(!i.is_taken_branch());
        assert_eq!(i.next_addr(), InstAddr::new(0x106));
        assert_eq!(i.fallthrough(), InstAddr::new(0x106));
        assert_eq!(i.branch_kind(), None);
    }

    #[test]
    fn taken_branch_redirects() {
        let rec = BranchRec::taken(BranchKind::Unconditional, InstAddr::new(0x40));
        let i = TraceInstr::branch(InstAddr::new(0x100), 4, rec);
        assert!(i.is_branch());
        assert!(i.is_taken_branch());
        assert_eq!(i.next_addr(), InstAddr::new(0x40));
        assert_eq!(i.fallthrough(), InstAddr::new(0x104));
        assert_eq!(i.branch_kind(), Some(BranchKind::Unconditional));
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let rec = BranchRec::not_taken(InstAddr::new(0x40));
        let i = TraceInstr::branch(InstAddr::new(0x100), 4, rec);
        assert!(i.is_branch());
        assert!(!i.is_taken_branch());
        assert_eq!(i.next_addr(), InstAddr::new(0x104));
    }
}
