//! Branch reuse-distance analysis.
//!
//! The mechanism the paper studies is driven by one workload property:
//! how many *distinct* branch sites execute between two consecutive
//! executions of the same site. Sites whose reuse distance fits the
//! first level's ~4.8 k entries predict from the BTB1/BTBP; distances
//! inside the 24 k-entry BTB2 are recoverable by bulk preloads; longer
//! distances are lost even to the second level. This module computes the
//! exact distribution, so a workload's BTB2 suitability can be judged
//! the way the paper's Table 4 "more than 5,000 unique taken branches"
//! screen does — but with full distributional detail.

use crate::{Trace, TraceInstr};
use std::collections::HashMap;

/// Histogram of branch reuse distances, measured in *distinct branch
/// sites* executed between consecutive executions of the same site.
///
/// ```
/// use zbp_trace::analysis::ReuseProfile;
/// use zbp_trace::profile::WorkloadProfile;
///
/// let trace = WorkloadProfile::tpf_airline().build(1).with_len(20_000);
/// let profile = ReuseProfile::collect(&trace);
/// assert_eq!(
///     profile.counts.iter().sum::<u64>() + profile.cold_executions,
///     profile.total_branches
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseProfile {
    /// Upper bounds of the distance buckets (exclusive).
    pub bucket_bounds: Vec<u64>,
    /// Branch-execution counts per bucket; the final entry counts
    /// distances at or above the last bound.
    pub counts: Vec<u64>,
    /// First-ever executions (no reuse distance).
    pub cold_executions: u64,
    /// Total dynamic branch executions.
    pub total_branches: u64,
}

impl ReuseProfile {
    /// Default bucket bounds aligned with the zEC12 capacities:
    /// inside the BTBP, inside BTB1+BTBP, 2× that, inside the BTB2, 2×
    /// and 4× the BTB2.
    pub const ZEC12_BOUNDS: [u64; 6] = [768, 4_864, 9_728, 24_576, 49_152, 98_304];

    /// Analyzes a trace with the zEC12-aligned buckets.
    pub fn collect<T: Trace>(trace: &T) -> Self {
        Self::collect_with_bounds(trace.iter(), &Self::ZEC12_BOUNDS)
    }

    /// Analyzes a record stream with custom bucket bounds (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn collect_with_bounds(iter: impl Iterator<Item = TraceInstr>, bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "need at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        // Reuse distance in distinct sites via a timestamped set: for
        // each site we remember the global branch-execution index of its
        // last execution, plus an ordered structure to count distinct
        // sites since then. Exact distinct-counting is O(n log n) with a
        // Fenwick tree over last-execution timestamps.
        let mut last_exec: HashMap<u64, usize> = HashMap::new();
        let mut fenwick = Fenwick::new();
        let mut counts = vec![0u64; bounds.len() + 1];
        let mut cold = 0u64;
        let mut total = 0u64;
        let mut t = 0usize;
        for instr in iter {
            let Some(_) = instr.branch else { continue };
            total += 1;
            let site = instr.addr.raw();
            match last_exec.insert(site, t) {
                None => {
                    cold += 1;
                }
                Some(prev) => {
                    // Distinct sites executed in (prev, t): sites whose
                    // last execution timestamp lies in that interval.
                    let distance = fenwick.count_in_range(prev + 1, t) as u64;
                    let bucket = bounds.iter().position(|&b| distance < b).unwrap_or(bounds.len());
                    counts[bucket] += 1;
                    fenwick.remove(prev);
                }
            }
            fenwick.insert(t);
            t += 1;
        }
        Self {
            bucket_bounds: bounds.to_vec(),
            counts,
            cold_executions: cold,
            total_branches: total,
        }
    }

    /// Fraction of re-executions whose distance fits within `bound`
    /// distinct sites (interpolating nothing — uses whole buckets whose
    /// upper bound is ≤ `bound`).
    pub fn fraction_within(&self, bound: u64) -> f64 {
        let reuses: u64 = self.counts.iter().sum();
        if reuses == 0 {
            return 0.0;
        }
        let covered: u64 = self
            .bucket_bounds
            .iter()
            .zip(&self.counts)
            .filter(|(&b, _)| b <= bound)
            .map(|(_, &c)| c)
            .sum();
        covered as f64 / reuses as f64
    }

    /// Human-readable rendering, one line per bucket.
    pub fn render(&self) -> String {
        let reuses: u64 = self.counts.iter().sum();
        let mut out = String::new();
        let mut lo = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let label = if i < self.bucket_bounds.len() {
                let hi = self.bucket_bounds[i];
                let l = format!("{lo}..{hi}");
                lo = hi;
                l
            } else {
                format!("{lo}+")
            };
            let pct = 100.0 * c as f64 / reuses.max(1) as f64;
            out.push_str(&format!("{label:>16} distinct sites: {c:>10} ({pct:5.1}%)\n"));
        }
        out.push_str(&format!(
            "{:>16}: {} of {} branch executions\n",
            "cold (first)", self.cold_executions, self.total_branches
        ));
        out
    }
}

/// Fenwick (binary indexed) tree over execution timestamps, supporting
/// point insert/remove and range counts. Grows geometrically; growth
/// rebuilds the node sums from a shadow membership vector (a Fenwick
/// tree cannot simply be zero-extended).
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<i64>,
    bits: Vec<bool>,
}

impl Fenwick {
    fn new() -> Self {
        Self { tree: Vec::new(), bits: Vec::new() }
    }

    fn ensure(&mut self, idx: usize) {
        if self.bits.len() > idx {
            return;
        }
        let n = (idx + 1).next_power_of_two();
        self.bits.resize(n, false);
        // O(n) rebuild: child node i feeds parent i | (i + 1).
        self.tree = vec![0; n];
        for i in 0..n {
            if self.bits[i] {
                self.tree[i] += 1;
            }
            let parent = i | (i + 1);
            if parent < n {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
    }

    fn add(&mut self, idx: usize, delta: i64) {
        self.ensure(idx);
        self.bits[idx] = delta > 0;
        let n = self.tree.len();
        let mut i = idx;
        while i < n {
            self.tree[i] += delta;
            i |= i + 1;
        }
    }

    fn insert(&mut self, idx: usize) {
        self.add(idx, 1);
    }

    fn remove(&mut self, idx: usize) {
        self.add(idx, -1);
    }

    /// Count of set timestamps in `0..=idx`.
    fn prefix(&self, idx: usize) -> i64 {
        if self.tree.is_empty() {
            return 0;
        }
        let mut i = idx.min(self.tree.len() - 1) as isize;
        let mut s = 0;
        while i >= 0 {
            s += self.tree[i as usize];
            i = (i & (i + 1)) - 1;
        }
        s
    }

    /// Count of set timestamps in `lo..hi` (half-open).
    fn count_in_range(&self, lo: usize, hi: usize) -> i64 {
        if hi <= lo {
            return 0;
        }
        let upper = self.prefix(hi - 1);
        let lower = if lo == 0 { 0 } else { self.prefix(lo - 1) };
        upper - lower
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::{BranchKind, BranchRec};
    use crate::{InstAddr, VecTrace};

    fn branch(addr: u64) -> TraceInstr {
        TraceInstr::branch(
            InstAddr::new(addr),
            4,
            BranchRec::taken(BranchKind::Conditional, InstAddr::new(addr ^ 0x40)),
        )
    }

    #[test]
    fn immediate_reexecution_has_distance_zero() {
        // A, A: the re-execution saw 0 distinct sites in between.
        let t = VecTrace::new("t", vec![branch(0x10), branch(0x10)]);
        let p = ReuseProfile::collect_with_bounds(t.records().iter().cloned(), &[1, 4]);
        assert_eq!(p.cold_executions, 1);
        assert_eq!(p.counts, vec![1, 0, 0]);
    }

    #[test]
    fn distance_counts_distinct_sites_not_executions() {
        // A, B, B, B, A: between the two As, only ONE distinct site (B).
        let t = VecTrace::new(
            "t",
            vec![branch(0x10), branch(0x20), branch(0x20), branch(0x20), branch(0x10)],
        );
        let p = ReuseProfile::collect_with_bounds(t.records().iter().cloned(), &[1, 2, 8]);
        // Distances: B->B twice (0 distinct), A->A (1 distinct).
        assert_eq!(p.counts, vec![2, 1, 0, 0]);
        assert_eq!(p.cold_executions, 2);
        assert_eq!(p.total_branches, 5);
    }

    #[test]
    fn cyclic_working_set_distance_equals_set_size() {
        // Cycle over 8 sites, 5 rounds: every re-execution has distance 7.
        let mut v = Vec::new();
        for _ in 0..5 {
            for i in 0..8u64 {
                v.push(branch(0x100 + i * 16));
            }
        }
        let t = VecTrace::new("t", v);
        let p = ReuseProfile::collect_with_bounds(t.records().iter().cloned(), &[7, 8, 64]);
        assert_eq!(p.cold_executions, 8);
        // 32 re-executions, all at exactly 7 distinct sites -> second
        // bucket (7..8).
        assert_eq!(p.counts, vec![0, 32, 0, 0]);
        assert!((p.fraction_within(8) - 1.0).abs() < 1e-12);
        assert_eq!(p.fraction_within(7), 0.0);
    }

    #[test]
    fn non_branches_are_transparent() {
        let t = VecTrace::new(
            "t",
            vec![
                branch(0x10),
                TraceInstr::plain(InstAddr::new(0x14), 4),
                TraceInstr::plain(InstAddr::new(0x18), 4),
                branch(0x10),
            ],
        );
        let p = ReuseProfile::collect_with_bounds(t.records().iter().cloned(), &[1]);
        assert_eq!(p.counts, vec![1, 0]);
    }

    #[test]
    fn render_mentions_every_bucket() {
        let t = VecTrace::new("t", vec![branch(0x10), branch(0x10)]);
        let p = ReuseProfile::collect_with_bounds(t.records().iter().cloned(), &[4, 16]);
        let text = p.render();
        assert!(text.contains("0..4"));
        assert!(text.contains("4..16"));
        assert!(text.contains("16+"));
        assert!(text.contains("cold"));
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn rejects_unsorted_bounds() {
        ReuseProfile::collect_with_bounds(std::iter::empty(), &[8, 4]);
    }

    #[test]
    fn fenwick_range_counts() {
        let mut f = Fenwick::new();
        for i in [3usize, 7, 11, 200] {
            f.insert(i);
        }
        assert_eq!(f.count_in_range(0, 4), 1);
        assert_eq!(f.count_in_range(3, 8), 2);
        assert_eq!(f.count_in_range(0, 1000), 4);
        f.remove(7);
        assert_eq!(f.count_in_range(3, 8), 1);
        assert_eq!(f.count_in_range(8, 8), 0);
    }
}
