//! External branch-trace ingestion (`.zbxt`).
//!
//! The synthetic workload generator covers the paper's Table-4 suite,
//! but an evaluation platform must also eat *real* traces. This module
//! parses the `ZBXT` external branch-trace format — a CBP-style
//! container holding a branch-site table plus a taken-stream of events,
//! with the sequential instructions between branches left implicit —
//! into an [`ExternalTrace`] that implements [`Trace`] and therefore
//! flows through every existing layer (compact capture, the trace
//! store, experiment grids, SimPoint phase selection).
//!
//! # File format (little-endian)
//!
//! ```text
//! magic "ZBXT" | version u32
//! name_len u32, name (utf-8)
//! start u64                          address of the first instruction
//! n_sites u32
//! sites   n_sites x { addr u64 | target u64 | len u8 | kind u8 }
//! n_events u64
//! events  n_events x u16             low 15 bits: site index
//!                                    bit 15: taken
//! ```
//!
//! Each event executes the sequential plain instructions from the
//! current position up to its site's address (4-byte instructions, as
//! branch-trace formats that omit the non-branch stream conventionally
//! assume), then the branch itself with the recorded outcome. The
//! parser validates every structural invariant up front — unknown site
//! indices, misaligned or backward gaps, overlong runs, not-taken
//! unconditional branches — so a malformed file is rejected loudly with
//! a byte offset instead of producing a silently wrong replay.
//!
//! Compressed containers (zstd / gzip framing) are detected by magic
//! and rejected with a decompress-first message: this build is
//! dependency-free, so the decompression step stays outside the tool.

use crate::branch::{BranchKind, BranchRec};
use crate::instr::TraceInstr;
use crate::{InstAddr, Trace};
use std::io::{self, Write};
use std::path::Path;
use zbp_support::hash::fnv1a_64;

const MAGIC: &[u8; 4] = b"ZBXT";
const VERSION: u32 = 1;

/// Zstandard frame magic (RFC 8878) — detected so a compressed trace
/// fails with "decompress first" instead of "bad magic".
const ZSTD_MAGIC: [u8; 4] = [0x28, 0xB5, 0x2F, 0xFD];
/// Gzip member magic (RFC 1952).
const GZIP_MAGIC: [u8; 2] = [0x1F, 0x8B];

/// Longest permitted sequential run between two branch events, in
/// instructions. Real code has a branch every handful of instructions;
/// a multi-megainstruction gap is a corrupt site table, and rejecting
/// it bounds the expansion a hostile header can demand.
pub const MAX_RUN: u64 = 1 << 20;

/// Event-stream taken bit (bit 15 of each `u16` event).
pub const EVENT_TAKEN: u16 = 1 << 15;

/// One static branch site of an external trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtSite {
    /// Branch instruction address.
    pub addr: u64,
    /// Branch target address (the resolved target for indirect sites).
    pub target: u64,
    /// Instruction length in bytes (2, 4 or 6).
    pub len: u8,
    /// Branch kind (same codes as the native `.zbpt` format).
    pub kind: BranchKind,
}

/// Errors produced while ingesting an external trace.
#[derive(Debug)]
pub enum IngestError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is a compressed container (`zstd` / `gzip`), which
    /// this dependency-free build cannot inflate.
    Compressed(&'static str),
    /// The stream does not start with the `ZBXT` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The stream ended before the field starting at `offset`.
    Truncated {
        /// Byte offset of the field the reader could not complete.
        offset: u64,
    },
    /// A field holds an invalid value.
    Corrupt {
        /// Which field is invalid.
        what: &'static str,
        /// Byte offset the field starts at.
        offset: u64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "i/o error ingesting trace: {e}"),
            IngestError::Compressed(kind) => write!(
                f,
                "{kind}-compressed trace container: decompress it first \
                 (this build has no decompressor)"
            ),
            IngestError::BadMagic => write!(f, "missing ZBXT magic"),
            IngestError::BadVersion(v) => write!(f, "unsupported external trace version {v}"),
            IngestError::Truncated { offset } => {
                write!(f, "truncated trace: stream ends inside the field at byte offset {offset}")
            }
            IngestError::Corrupt { what, offset } => {
                write!(f, "corrupt external trace: bad {what} at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// An ingested external trace: the site table and taken-stream in
/// memory, the sequential instructions between branches expanded
/// lazily by the iterator.
///
/// The trace's identity for store and cache keys is the FNV-1a digest
/// of the raw file bytes ([`ExternalTrace::content_fnv`]) — two files
/// with equal bytes are the same workload regardless of path or name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalTrace {
    name: String,
    start: InstAddr,
    sites: Vec<ExtSite>,
    events: Vec<u16>,
    len: u64,
    content_fnv: u64,
}

impl ExternalTrace {
    /// Parses a `ZBXT` byte image.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError`] on malformed input; truncation and
    /// corruption name the byte offset of the bad field.
    pub fn parse(bytes: &[u8]) -> Result<Self, IngestError> {
        let mut r = Reader { bytes, pos: 0 };
        if bytes.len() >= 4 && bytes[..4] == ZSTD_MAGIC {
            return Err(IngestError::Compressed("zstd"));
        }
        if bytes.len() >= 2 && bytes[..2] == GZIP_MAGIC {
            return Err(IngestError::Compressed("gzip"));
        }
        let mut magic = [0u8; 4];
        r.exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(IngestError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(IngestError::BadVersion(version));
        }
        let name_off = r.pos;
        let name_len = r.u32()? as usize;
        if name_len > 1 << 20 {
            return Err(IngestError::Corrupt { what: "name length", offset: name_off });
        }
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| IngestError::Corrupt { what: "name utf-8", offset: name_off + 4 })?;
        let start = r.u64()?;
        let sites_off = r.pos;
        let n_sites = r.u32()? as usize;
        if n_sites > EVENT_TAKEN as usize {
            // Site indices are 15-bit; a larger table is unreachable.
            return Err(IngestError::Corrupt { what: "site count", offset: sites_off });
        }
        let mut sites = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            let addr = r.u64()?;
            let target = r.u64()?;
            let rest_off = r.pos;
            let mut two = [0u8; 2];
            r.exact(&mut two)?;
            let (len, kind_code) = (two[0], two[1]);
            if !matches!(len, 2 | 4 | 6) {
                return Err(IngestError::Corrupt { what: "site length", offset: rest_off });
            }
            let kind = branch_kind(kind_code)
                .ok_or(IngestError::Corrupt { what: "site kind", offset: rest_off + 1 })?;
            sites.push(ExtSite { addr, target, len, kind });
        }
        let n_events = r.u64()?;
        let events_off = r.pos;
        let raw = r.take(
            (n_events as usize)
                .checked_mul(2)
                .ok_or(IngestError::Truncated { offset: events_off })?,
        )?;
        let events: Vec<u16> =
            raw.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect();
        if r.pos != bytes.len() as u64 {
            return Err(IngestError::Corrupt { what: "trailing bytes", offset: r.pos });
        }

        // Walk the event stream once, validating the implicit gaps and
        // counting the dynamic instructions the iterator will expand.
        let mut pos = start;
        let mut len = 0u64;
        for (i, &ev) in events.iter().enumerate() {
            let ev_off = events_off + 2 * i as u64;
            let taken = ev & EVENT_TAKEN != 0;
            let site = *sites
                .get((ev & !EVENT_TAKEN) as usize)
                .ok_or(IngestError::Corrupt { what: "event site index", offset: ev_off })?;
            if !taken && site.kind != BranchKind::Conditional {
                return Err(IngestError::Corrupt {
                    what: "not-taken unconditional event",
                    offset: ev_off,
                });
            }
            let gap = site
                .addr
                .checked_sub(pos)
                .ok_or(IngestError::Corrupt { what: "backward event gap", offset: ev_off })?;
            if gap % 4 != 0 {
                return Err(IngestError::Corrupt { what: "misaligned event gap", offset: ev_off });
            }
            let run = gap / 4;
            if run > MAX_RUN {
                return Err(IngestError::Corrupt { what: "overlong run", offset: ev_off });
            }
            len += run + 1;
            pos = if taken { site.target } else { site.addr + u64::from(site.len) };
        }
        let content_fnv = fnv1a_64(bytes);
        Ok(Self { name, start: InstAddr::new(start), sites, events, len, content_fnv })
    }

    /// Reads and parses an external trace file.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::Io`] if the file cannot be read, or any
    /// parse error from [`ExternalTrace::parse`].
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, IngestError> {
        let bytes = std::fs::read(path).map_err(IngestError::Io)?;
        Self::parse(&bytes)
    }

    /// FNV-1a digest of the raw file bytes: the trace's identity in
    /// store and cache keys.
    pub fn content_fnv(&self) -> u64 {
        self.content_fnv
    }

    /// Static branch sites.
    pub fn sites(&self) -> &[ExtSite] {
        &self.sites
    }

    /// Number of branch events in the taken-stream.
    pub fn events(&self) -> u64 {
        self.events.len() as u64
    }

    /// Fraction of events that were taken.
    pub fn taken_fraction(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().filter(|&&e| e & EVENT_TAKEN != 0).count() as f64
            / self.events.len() as f64
    }
}

impl Trace for ExternalTrace {
    type Iter<'a> = ExternalIter<'a>;

    fn iter(&self) -> Self::Iter<'_> {
        ExternalIter { trace: self, event: 0, pos: self.start, remaining_gap: 0 }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// Iterator expanding the implicit sequential instructions between
/// branch events.
#[derive(Debug, Clone)]
pub struct ExternalIter<'a> {
    trace: &'a ExternalTrace,
    event: usize,
    pos: InstAddr,
    remaining_gap: u64,
}

impl Iterator for ExternalIter<'_> {
    type Item = TraceInstr;

    fn next(&mut self) -> Option<TraceInstr> {
        if self.remaining_gap > 0 {
            self.remaining_gap -= 1;
            let instr = TraceInstr::plain(self.pos, 4);
            self.pos = self.pos.add(4);
            return Some(instr);
        }
        let &ev = self.trace.events.get(self.event)?;
        let taken = ev & EVENT_TAKEN != 0;
        let site = self.trace.sites[(ev & !EVENT_TAKEN) as usize];
        let gap = (site.addr - self.pos.raw()) / 4;
        if gap > 0 {
            self.remaining_gap = gap - 1;
            let instr = TraceInstr::plain(self.pos, 4);
            self.pos = self.pos.add(4);
            return Some(instr);
        }
        self.event += 1;
        let target = InstAddr::new(site.target);
        let rec =
            if taken { BranchRec::taken(site.kind, target) } else { BranchRec::not_taken(target) };
        let instr = TraceInstr::branch(InstAddr::new(site.addr), site.len, rec);
        self.pos = instr.next_addr();
        Some(instr)
    }
}

/// Serializes a `ZBXT` image from its parts — the writing half of
/// [`ExternalTrace::parse`], used by the fixture generator, the
/// property tests, and external tooling producing traces for this
/// simulator.
///
/// # Errors
///
/// Returns any error from the underlying writer.
pub fn write_external<W: Write>(
    name: &str,
    start: u64,
    sites: &[ExtSite],
    events: &[u16],
    mut writer: W,
) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name.as_bytes())?;
    writer.write_all(&start.to_le_bytes())?;
    writer.write_all(&(sites.len() as u32).to_le_bytes())?;
    for s in sites {
        writer.write_all(&s.addr.to_le_bytes())?;
        writer.write_all(&s.target.to_le_bytes())?;
        writer.write_all(&[s.len, kind_code(s.kind)])?;
    }
    writer.write_all(&(events.len() as u64).to_le_bytes())?;
    for e in events {
        writer.write_all(&e.to_le_bytes())?;
    }
    Ok(())
}

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn branch_kind(c: u8) -> Option<BranchKind> {
    Some(match c {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        _ => return None,
    })
}

/// A byte-slice reader tracking its offset for error reporting.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> Reader<'a> {
    fn exact(&mut self, buf: &mut [u8]) -> Result<(), IngestError> {
        let got = self.take(buf.len())?;
        buf.copy_from_slice(got);
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IngestError> {
        let start = self.pos as usize;
        let end = start.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(IngestError::Truncated { offset: self.pos });
        };
        self.pos = end as u64;
        Ok(&self.bytes[start..end])
    }

    fn u32(&mut self) -> Result<u32, IngestError> {
        let mut b = [0u8; 4];
        self.exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, IngestError> {
        let mut b = [0u8; 8];
        self.exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_parts() -> (Vec<ExtSite>, Vec<u16>) {
        let sites = vec![
            ExtSite { addr: 0x1010, target: 0x1000, len: 4, kind: BranchKind::Conditional },
            ExtSite { addr: 0x1020, target: 0x2000, len: 6, kind: BranchKind::Call },
            ExtSite { addr: 0x2008, target: 0x1026, len: 2, kind: BranchKind::Return },
            ExtSite { addr: 0x102e, target: 0x1000, len: 4, kind: BranchKind::Unconditional },
        ];
        // Loop once at site 0, fall through, call + return, jump back
        // to the top, loop once more.
        let events =
            vec![EVENT_TAKEN, 0, 1 | EVENT_TAKEN, 2 | EVENT_TAKEN, 3 | EVENT_TAKEN, EVENT_TAKEN];
        (sites, events)
    }

    fn sample_bytes() -> Vec<u8> {
        let (sites, events) = sample_parts();
        let mut buf = Vec::new();
        write_external("sample", 0x1000, &sites, &events, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_expands_the_event_stream() {
        let t = ExternalTrace::parse(&sample_bytes()).unwrap();
        assert_eq!(t.name(), "sample");
        assert_eq!(t.events(), 6);
        let instrs: Vec<TraceInstr> = t.iter().collect();
        assert_eq!(instrs.len() as u64, t.len());
        // First event: 4 plain instructions 0x1000..0x1010, then the
        // taken conditional back to 0x1000.
        assert_eq!(instrs[0], TraceInstr::plain(InstAddr::new(0x1000), 4));
        assert_eq!(instrs[4].addr, InstAddr::new(0x1010));
        assert!(instrs[4].is_taken_branch());
        // Second event: same gap again, conditional not taken this time.
        assert_eq!(instrs[9].addr, InstAddr::new(0x1010));
        assert!(!instrs[9].is_taken_branch());
        assert!(instrs[9].is_branch());
        // The stream replays identically.
        let again: Vec<TraceInstr> = t.iter().collect();
        assert_eq!(instrs, again);
    }

    #[test]
    fn content_fnv_tracks_bytes_not_name() {
        let a = ExternalTrace::parse(&sample_bytes()).unwrap();
        let (sites, events) = sample_parts();
        let mut renamed = Vec::new();
        write_external("other", 0x1000, &sites, &events, &mut renamed).unwrap();
        let b = ExternalTrace::parse(&renamed).unwrap();
        assert_ne!(a.content_fnv(), b.content_fnv(), "name is part of the bytes");
        let c = ExternalTrace::parse(&sample_bytes()).unwrap();
        assert_eq!(a.content_fnv(), c.content_fnv());
    }

    #[test]
    fn rejects_compressed_containers_loudly() {
        let mut zstd = ZSTD_MAGIC.to_vec();
        zstd.extend_from_slice(&[0; 16]);
        let err = ExternalTrace::parse(&zstd).unwrap_err();
        assert!(matches!(err, IngestError::Compressed("zstd")));
        assert!(err.to_string().contains("decompress"));
        let mut gz = GZIP_MAGIC.to_vec();
        gz.extend_from_slice(&[0; 16]);
        assert!(matches!(ExternalTrace::parse(&gz).unwrap_err(), IngestError::Compressed("gzip")));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(ExternalTrace::parse(b"NOPE1234").unwrap_err(), IngestError::BadMagic));
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(ExternalTrace::parse(&buf).unwrap_err(), IngestError::BadVersion(9)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let full = sample_bytes();
        for cut in 0..full.len() {
            let err = ExternalTrace::parse(&full[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    IngestError::Truncated { .. }
                        | IngestError::BadMagic
                        | IngestError::Corrupt { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_unknown_site_index() {
        let (sites, _) = sample_parts();
        let mut buf = Vec::new();
        write_external("bad", 0x1000, &sites, &[7 | EVENT_TAKEN], &mut buf).unwrap();
        let err = ExternalTrace::parse(&buf).unwrap_err();
        assert!(
            matches!(err, IngestError::Corrupt { what: "event site index", .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_overlong_run() {
        let sites =
            vec![ExtSite { addr: 4 * (MAX_RUN + 1), target: 0, len: 4, kind: BranchKind::Call }];
        let mut buf = Vec::new();
        write_external("far", 0, &sites, &[EVENT_TAKEN], &mut buf).unwrap();
        let err = ExternalTrace::parse(&buf).unwrap_err();
        assert!(matches!(err, IngestError::Corrupt { what: "overlong run", .. }), "got {err:?}");
        // One instruction shorter is the longest legal run.
        let sites = vec![ExtSite { addr: 4 * MAX_RUN, target: 0, len: 4, kind: BranchKind::Call }];
        let mut buf = Vec::new();
        write_external("ok", 0, &sites, &[EVENT_TAKEN], &mut buf).unwrap();
        assert_eq!(ExternalTrace::parse(&buf).unwrap().len(), MAX_RUN + 1);
    }

    #[test]
    fn rejects_backward_and_misaligned_gaps() {
        let sites = vec![ExtSite { addr: 0x100, target: 0x200, len: 4, kind: BranchKind::Call }];
        let mut buf = Vec::new();
        write_external("back", 0x200, &sites, &[EVENT_TAKEN], &mut buf).unwrap();
        let err = ExternalTrace::parse(&buf).unwrap_err();
        assert!(
            matches!(err, IngestError::Corrupt { what: "backward event gap", .. }),
            "got {err:?}"
        );
        let mut buf = Vec::new();
        write_external("skew", 0x0FE, &sites, &[EVENT_TAKEN], &mut buf).unwrap();
        let err = ExternalTrace::parse(&buf).unwrap_err();
        assert!(
            matches!(err, IngestError::Corrupt { what: "misaligned event gap", .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_not_taken_unconditional() {
        let sites =
            vec![ExtSite { addr: 0, target: 0x40, len: 4, kind: BranchKind::Unconditional }];
        let mut buf = Vec::new();
        write_external("nt", 0, &sites, &[0], &mut buf).unwrap();
        let err = ExternalTrace::parse(&buf).unwrap_err();
        assert!(
            matches!(err, IngestError::Corrupt { what: "not-taken unconditional event", .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut buf = sample_bytes();
        buf.push(0);
        let err = ExternalTrace::parse(&buf).unwrap_err();
        assert!(matches!(err, IngestError::Corrupt { what: "trailing bytes", .. }), "got {err:?}");
    }

    #[test]
    fn far_targets_survive_compact_capture() {
        // A call 16 GiB away exceeds the compact encoding's ±2 GiB
        // target delta and must flow through its far-word escape.
        let far = 0x4_0000_1000u64;
        let sites = vec![
            ExtSite { addr: 0x1000, target: far, len: 6, kind: BranchKind::Call },
            ExtSite { addr: far + 8, target: 0x1006, len: 2, kind: BranchKind::Return },
        ];
        let events = vec![EVENT_TAKEN, 1 | EVENT_TAKEN];
        let mut buf = Vec::new();
        write_external("far-call", 0x1000, &sites, &events, &mut buf).unwrap();
        let t = ExternalTrace::parse(&buf).unwrap();
        let compact = crate::CompactTrace::capture(&t).unwrap();
        let direct: Vec<TraceInstr> = t.iter().collect();
        let replayed: Vec<TraceInstr> = compact.iter().collect();
        assert_eq!(direct, replayed, "far-target escape must replay bit-identically");
    }

    #[test]
    fn error_display_names_offsets() {
        let err = IngestError::Corrupt { what: "overlong run", offset: 42 };
        assert!(err.to_string().contains("offset 42"));
        use std::error::Error;
        assert!(IngestError::Io(io::Error::other("x")).source().is_some());
        assert!(IngestError::BadMagic.source().is_none());
    }
}
