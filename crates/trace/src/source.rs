//! First-class workload identity: synthetic profile or external trace.
//!
//! Every layer above this crate — the trace store, `SimSession`, the
//! experiment registry's cell keys and manifests, the CLI, the bench
//! harness — used to assume a workload *is* a synthetic
//! `(profile, seed, len)` triple. [`WorkloadSource`] makes the identity
//! explicit: a workload is either a [`WorkloadProfile`] to synthesize
//! or an ingested [`ExternalTrace`] file, and every keyed structure
//! derives its identity from [`WorkloadSource::key_json`].
//!
//! Key compatibility is load-bearing: for synthetic sources,
//! `key_json()` is byte-for-byte the profile's JSON rendering — exactly
//! the string the pre-source code embedded in trace-store and cell-
//! cache keys — so every committed cache entry and store file stays
//! valid. External sources key on the FNV-1a digest of the raw file
//! bytes, so a renamed or moved trace file hits the same entries and a
//! modified one can never alias them.

use crate::ingest::ExternalTrace;
use crate::profile::{ProfileTrace, WorkloadProfile};
use crate::store::TraceStoreKey;
use crate::{Trace, TraceInstr};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use zbp_support::json;

/// One workload the simulator can replay: a synthetic profile or an
/// ingested external trace.
///
/// Cloning is cheap — external traces are shared behind an [`Arc`], so
/// a grid fan-out never duplicates the event stream.
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// A synthetic workload generated from a [`WorkloadProfile`].
    Synthetic(WorkloadProfile),
    /// An ingested external trace file.
    External(ExternalSource),
}

/// An external trace plus the provenance needed for display.
#[derive(Debug, Clone)]
pub struct ExternalSource {
    /// Path the trace was ingested from (display only — identity comes
    /// from the content digest).
    pub path: PathBuf,
    trace: Arc<ExternalTrace>,
}

impl WorkloadSource {
    /// Wraps an already-parsed external trace.
    pub fn external(path: impl Into<PathBuf>, trace: ExternalTrace) -> Self {
        Self::External(ExternalSource { path: path.into(), trace: Arc::new(trace) })
    }

    /// Ingests an external trace file.
    ///
    /// # Errors
    ///
    /// Returns any [`crate::ingest::IngestError`] from reading or
    /// parsing, rendered as a string naming the path.
    pub fn ingest(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let trace =
            ExternalTrace::read_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Self::external(path, trace))
    }

    /// Workload name for grids and reports.
    pub fn name(&self) -> &str {
        match self {
            Self::Synthetic(p) => &p.name,
            Self::External(e) => e.trace.name(),
        }
    }

    /// Default dynamic length: the profile's default, or the external
    /// trace's full instruction count.
    pub fn default_len(&self) -> u64 {
        match self {
            Self::Synthetic(p) => p.default_len,
            Self::External(e) => e.trace.len(),
        }
    }

    /// Published unique-branch-site target (Table 4), `0` for external
    /// traces (no published target to validate against).
    pub fn unique_branches(&self) -> u32 {
        match self {
            Self::Synthetic(p) => p.unique_branches(),
            Self::External(_) => 0,
        }
    }

    /// Published unique-taken target, `0` for external traces.
    pub fn unique_taken(&self) -> u32 {
        match self {
            Self::Synthetic(p) => p.unique_taken(),
            Self::External(_) => 0,
        }
    }

    /// The identity string embedded in every trace-store and cell-cache
    /// key.
    ///
    /// Synthetic sources render exactly as `json::to_string(profile)` —
    /// byte-identical to the pre-source key layout, keeping every
    /// committed cache entry and store file valid. External sources
    /// render as a distinct object keyed on the content digest, which
    /// can never collide with a profile rendering (profiles always
    /// start with a `name` field).
    pub fn key_json(&self) -> String {
        match self {
            Self::Synthetic(p) => json::to_string(p),
            Self::External(e) => format!(
                "{{\"external\":{{\"content_fnv\":\"{:016x}\",\"len\":{}}}}}",
                e.trace.content_fnv(),
                e.trace.len()
            ),
        }
    }

    /// One-line provenance descriptor stamped into manifests.
    pub fn describe(&self) -> String {
        match self {
            Self::Synthetic(p) => format!("synthetic:{}", p.name),
            Self::External(e) => {
                format!("external:{}@fnv={:016x}", e.trace.name(), e.trace.content_fnv())
            }
        }
    }

    /// Trace-store key for this source at `(seed, len)`. Synthetic
    /// sources keep the exact pre-source key rendering; external
    /// sources use a seed-free namespace (replay does not depend on the
    /// synthesis seed).
    pub fn store_key(&self, seed: u64, len: u64) -> TraceStoreKey {
        match self {
            Self::Synthetic(p) => TraceStoreKey::workload(&json::to_string(p), seed, len),
            Self::External(e) => TraceStoreKey::external(e.trace.content_fnv(), len),
        }
    }

    /// Builds the replayable stream, capped at `len` dynamic
    /// instructions. Synthetic sources synthesize from `seed`; external
    /// sources replay their recorded stream (the seed is ignored — the
    /// stream is fixed).
    pub fn build_with_len(&self, seed: u64, len: u64) -> SourceTrace<'_> {
        match self {
            Self::Synthetic(p) => SourceTrace::Synthetic(p.build_with_len(seed, len)),
            Self::External(e) => {
                SourceTrace::External { trace: &e.trace, len: len.min(e.trace.len()) }
            }
        }
    }
}

impl From<WorkloadProfile> for WorkloadSource {
    fn from(p: WorkloadProfile) -> Self {
        Self::Synthetic(p)
    }
}

// Identity comparison: two sources are the same workload exactly when
// their key renderings match (same profile, or same external bytes).
impl PartialEq for WorkloadSource {
    fn eq(&self, other: &Self) -> bool {
        self.key_json() == other.key_json()
    }
}

impl Eq for WorkloadSource {}

/// The replayable stream of one [`WorkloadSource`]: a generated
/// [`ProfileTrace`] or a borrowed, length-capped external stream.
#[derive(Debug)]
pub enum SourceTrace<'a> {
    /// Synthesized stream.
    Synthetic(ProfileTrace),
    /// Borrowed external stream capped at `len` instructions.
    External {
        /// The shared ingested trace.
        trace: &'a ExternalTrace,
        /// Effective replay length.
        len: u64,
    },
}

impl Trace for SourceTrace<'_> {
    type Iter<'b>
        = SourceIter<'b>
    where
        Self: 'b;

    fn iter(&self) -> SourceIter<'_> {
        match self {
            Self::Synthetic(t) => SourceIter::Synthetic(t.iter()),
            Self::External { trace, len } => SourceIter::External(trace.iter().take(*len as usize)),
        }
    }

    fn name(&self) -> &str {
        match self {
            Self::Synthetic(t) => t.name(),
            Self::External { trace, .. } => trace.name(),
        }
    }

    fn len(&self) -> u64 {
        match self {
            Self::Synthetic(t) => t.len(),
            Self::External { len, .. } => *len,
        }
    }
}

/// Iterator over a [`SourceTrace`].
pub enum SourceIter<'a> {
    /// Synthesized stream.
    Synthetic(<ProfileTrace as Trace>::Iter<'a>),
    /// Length-capped external stream.
    External(std::iter::Take<crate::ingest::ExternalIter<'a>>),
}

impl Iterator for SourceIter<'_> {
    type Item = TraceInstr;

    fn next(&mut self) -> Option<TraceInstr> {
        match self {
            Self::Synthetic(it) => it.next(),
            Self::External(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchKind;
    use crate::ingest::{write_external, ExtSite, EVENT_TAKEN};

    fn external() -> WorkloadSource {
        let sites = vec![
            ExtSite { addr: 0x1010, target: 0x1000, len: 4, kind: BranchKind::Conditional },
            ExtSite { addr: 0x1020, target: 0x1000, len: 4, kind: BranchKind::Unconditional },
        ];
        let events = vec![EVENT_TAKEN, 0, 1 | EVENT_TAKEN, EVENT_TAKEN];
        let mut buf = Vec::new();
        write_external("ext-test", 0x1000, &sites, &events, &mut buf).unwrap();
        WorkloadSource::external("/tmp/ext-test.zbxt", ExternalTrace::parse(&buf).unwrap())
    }

    #[test]
    fn synthetic_key_json_matches_profile_rendering_exactly() {
        // Load-bearing: this exact string is embedded in committed
        // cache entries and store files from pre-source runs.
        let p = WorkloadProfile::tpf_airline();
        let s = WorkloadSource::from(p.clone());
        assert_eq!(s.key_json(), json::to_string(&p));
        assert_eq!(s.name(), p.name);
        assert_eq!(s.default_len(), p.default_len);
        assert_eq!(s.unique_branches(), p.unique_branches());
        let key = s.store_key(7, 1000);
        let direct = TraceStoreKey::workload(&json::to_string(&p), 7, 1000);
        assert_eq!(key.rendered(), direct.rendered());
    }

    #[test]
    fn synthetic_build_matches_profile_build() {
        let p = WorkloadProfile::tpf_airline();
        let s = WorkloadSource::from(p.clone());
        let a: Vec<TraceInstr> = s.build_with_len(3, 2_000).iter().collect();
        let b: Vec<TraceInstr> = p.build_with_len(3, 2_000).iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn external_key_ignores_seed_and_path() {
        let s = external();
        assert_eq!(s.store_key(1, 100).rendered(), s.store_key(2, 100).rendered());
        assert_ne!(s.store_key(1, 100).rendered(), s.store_key(1, 101).rendered());
        assert!(s.key_json().starts_with("{\"external\":"));
        assert!(s.describe().starts_with("external:ext-test@fnv="));
        let WorkloadSource::External(e) = &s else { panic!("external") };
        assert_eq!(e.path, PathBuf::from("/tmp/ext-test.zbxt"));
    }

    #[test]
    fn external_build_caps_length_and_ignores_seed() {
        let s = external();
        let full = s.default_len();
        assert!(full > 4, "gaps expand");
        let a: Vec<TraceInstr> = s.build_with_len(1, u64::MAX).iter().collect();
        let b: Vec<TraceInstr> = s.build_with_len(99, u64::MAX).iter().collect();
        assert_eq!(a, b, "seed must not matter");
        assert_eq!(a.len() as u64, full);
        let capped = s.build_with_len(1, 3);
        assert_eq!(capped.len(), 3);
        assert_eq!(capped.iter().count(), 3);
        assert_eq!(capped.name(), "ext-test");
    }

    #[test]
    fn equality_is_content_identity() {
        let a = external();
        let b = external();
        assert_eq!(a, b);
        let p = WorkloadSource::from(WorkloadProfile::tpf_airline());
        assert_ne!(a, p);
        assert_eq!(p, WorkloadSource::from(WorkloadProfile::tpf_airline()));
    }
}
