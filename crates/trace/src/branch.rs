//! Branch classification and dynamic outcome records.

use crate::addr::InstAddr;
use std::fmt;

/// Static classification of a branch instruction.
///
/// The classes matter to the predictor: conditional branches exercise the
/// direction predictors (BHT/PHT), while indirect branches and returns
/// exercise the changing target buffer (CTB), and the static surprise
/// guess differs per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional relative branch (taken or not-taken, fixed target).
    Conditional,
    /// Unconditional relative branch (always taken, fixed target).
    Unconditional,
    /// Call: unconditional, pushes a return address.
    Call,
    /// Return: indirect through the link register / stack.
    Return,
    /// Computed/indirect branch with a potentially changing target.
    Indirect,
}

impl BranchKind {
    /// Whether the branch can fall through (only conditionals can).
    pub const fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// Whether the target may vary between dynamic executions.
    pub const fn has_changing_target(self) -> bool {
        matches!(self, BranchKind::Return | BranchKind::Indirect)
    }

    /// All kinds, for exhaustive sweeps in tests.
    pub const ALL: [BranchKind; 5] = [
        BranchKind::Conditional,
        BranchKind::Unconditional,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::Indirect,
    ];
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::Unconditional => "uncond",
            BranchKind::Call => "call",
            BranchKind::Return => "return",
            BranchKind::Indirect => "indirect",
        };
        f.write_str(s)
    }
}

/// Dynamic record of one executed branch: its kind, resolved direction and
/// resolved target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRec {
    /// Static kind of the branch.
    pub kind: BranchKind,
    /// Resolved direction: `true` if the branch was taken.
    pub taken: bool,
    /// Resolved target address (meaningful when `taken`).
    pub target: InstAddr,
}

impl BranchRec {
    /// A taken branch of the given kind.
    pub const fn taken(kind: BranchKind, target: InstAddr) -> Self {
        Self { kind, taken: true, target }
    }

    /// A not-taken conditional branch (target still records the would-be
    /// destination, as a trace would).
    pub const fn not_taken(target: InstAddr) -> Self {
        Self { kind: BranchKind::Conditional, taken: false, target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditionality() {
        assert!(BranchKind::Conditional.is_conditional());
        for k in
            [BranchKind::Unconditional, BranchKind::Call, BranchKind::Return, BranchKind::Indirect]
        {
            assert!(!k.is_conditional(), "{k} must not be conditional");
        }
    }

    #[test]
    fn changing_targets() {
        assert!(BranchKind::Return.has_changing_target());
        assert!(BranchKind::Indirect.has_changing_target());
        assert!(!BranchKind::Conditional.has_changing_target());
        assert!(!BranchKind::Call.has_changing_target());
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        let names: Vec<String> = BranchKind::ALL.iter().map(|k| k.to_string()).collect();
        for n in &names {
            assert!(!n.is_empty());
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn constructors() {
        let t = BranchRec::taken(BranchKind::Call, InstAddr::new(0x40));
        assert!(t.taken);
        let n = BranchRec::not_taken(InstAddr::new(0x80));
        assert!(!n.taken);
        assert_eq!(n.kind, BranchKind::Conditional);
    }
}
