//! Trace footprint statistics (validates Table 4).

use crate::{Trace, TraceInstr};
use std::collections::HashSet;
use std::fmt;

/// Summary statistics of a dynamic instruction trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Dynamic branch count.
    pub branches: u64,
    /// Dynamic taken-branch count.
    pub taken_branches: u64,
    /// Unique branch instruction addresses (Table 4, column 1).
    pub unique_branches: u64,
    /// Unique ever-taken branch instruction addresses (Table 4, column 2).
    pub unique_taken: u64,
    /// Unique 4 KB code blocks touched.
    pub unique_blocks: u64,
    /// Total instruction bytes executed.
    pub bytes: u64,
}

impl TraceStats {
    /// Collects statistics over a full trace.
    pub fn collect<T: Trace>(trace: &T) -> Self {
        Self::from_iter_records(trace.iter())
    }

    /// Collects statistics from a raw record stream.
    pub fn from_iter_records(iter: impl Iterator<Item = TraceInstr>) -> Self {
        let mut s = TraceStats::default();
        let mut branch_addrs: HashSet<u64> = HashSet::new();
        let mut taken_addrs: HashSet<u64> = HashSet::new();
        let mut blocks: HashSet<u64> = HashSet::new();
        for i in iter {
            s.instructions += 1;
            s.bytes += i.len as u64;
            blocks.insert(i.addr.block());
            if let Some(b) = i.branch {
                s.branches += 1;
                branch_addrs.insert(i.addr.raw());
                if b.taken {
                    s.taken_branches += 1;
                    taken_addrs.insert(i.addr.raw());
                }
            }
        }
        s.unique_branches = branch_addrs.len() as u64;
        s.unique_taken = taken_addrs.len() as u64;
        s.unique_blocks = blocks.len() as u64;
        s
    }

    /// Dynamic branches per instruction.
    pub fn branch_fraction(&self) -> f64 {
        self.branches as f64 / self.instructions.max(1) as f64
    }

    /// Fraction of dynamic branches resolved taken.
    pub fn taken_fraction(&self) -> f64 {
        self.taken_branches as f64 / self.branches.max(1) as f64
    }

    /// Mean instruction length in bytes.
    pub fn avg_instr_len(&self) -> f64 {
        self.bytes as f64 / self.instructions.max(1) as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs, {} branches ({:.1}% taken), {} unique sites ({} ever-taken), {} x 4KB blocks",
            self.instructions,
            self.branches,
            100.0 * self.taken_fraction(),
            self.unique_branches,
            self.unique_taken,
            self.unique_blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::{BranchKind, BranchRec};
    use crate::{InstAddr, VecTrace};

    #[test]
    fn counts_unique_and_dynamic_separately() {
        let b = TraceInstr::branch(
            InstAddr::new(0x100),
            4,
            BranchRec::taken(BranchKind::Unconditional, InstAddr::new(0x200)),
        );
        let nt =
            TraceInstr::branch(InstAddr::new(0x200), 4, BranchRec::not_taken(InstAddr::new(0x300)));
        let t = VecTrace::new("t", vec![b, nt, b]);
        let s = TraceStats::collect(&t);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.branches, 3);
        assert_eq!(s.taken_branches, 2);
        assert_eq!(s.unique_branches, 2);
        assert_eq!(s.unique_taken, 1);
        assert_eq!(s.bytes, 12);
    }

    #[test]
    fn a_site_taken_once_counts_as_taken_forever() {
        let a = InstAddr::new(0x100);
        let taken = TraceInstr::branch(
            a,
            4,
            BranchRec::taken(BranchKind::Conditional, InstAddr::new(0x40)),
        );
        let not = TraceInstr::branch(a, 4, BranchRec::not_taken(InstAddr::new(0x40)));
        let t = VecTrace::new("t", vec![not, taken, not]);
        let s = TraceStats::collect(&t);
        assert_eq!(s.unique_branches, 1);
        assert_eq!(s.unique_taken, 1);
        assert!((s.taken_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_handle_empty_traces() {
        let s = TraceStats::collect(&VecTrace::default());
        assert_eq!(s.branch_fraction(), 0.0);
        assert_eq!(s.taken_fraction(), 0.0);
        assert_eq!(s.avg_instr_len(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = TraceStats { instructions: 10, branches: 2, ..Default::default() };
        let text = s.to_string();
        assert!(text.contains("10 instrs"));
        assert!(text.contains("2 branches"));
    }

    #[test]
    fn blocks_counted_at_4kb_granularity() {
        let t = VecTrace::new(
            "t",
            vec![
                TraceInstr::plain(InstAddr::new(0x0000), 4),
                TraceInstr::plain(InstAddr::new(0x0FFC), 4),
                TraceInstr::plain(InstAddr::new(0x1000), 4),
            ],
        );
        assert_eq!(TraceStats::collect(&t).unique_blocks, 2);
    }
}

zbp_support::impl_json_struct!(TraceStats {
    instructions,
    branches,
    taken_branches,
    unique_branches,
    unique_taken,
    unique_blocks,
    bytes,
});
