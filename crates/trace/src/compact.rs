//! Compact branch-point trace encoding.
//!
//! A [`MaterializedTrace`](crate::MaterializedTrace) stores one padded
//! 32-byte [`TraceInstr`] per dynamic instruction; the vast majority of
//! those records are sequential non-branch instructions whose only
//! information content is their length. A [`CompactTrace`] instead stores
//! the stream as a sequence of **branch points** — one packed 12-byte
//! record per control-relevant instruction — separated by run-length
//! encoded gaps of sequential instructions:
//!
//! * [`BranchPoint`] (12 B): `gap` = number of sequential non-branch
//!   instructions since the previous point, `target_delta` = branch
//!   target as a signed 32-bit displacement from the branch's own
//!   address, and packed `flags` (3-bit kind code, taken, far-target,
//!   discontinuity and wrong-path bits).
//! * A side stream of 2-bit **length codes**, one per instruction
//!   (2/4/6 bytes encode as 0/1/2), packed four to a byte. Run lengths
//!   therefore need no per-instruction record at all: a run is decoded
//!   by walking `gap` length codes forward from the run's start address.
//! * A side stream of 64-bit **far words** for everything that does not
//!   fit the deltas: targets beyond ±2 GiB ([`FLAG_FAR`]), the resume
//!   address of an asynchronous discontinuity ([`FLAG_DISC`]), and the
//!   off-path address of a wrong-path record ([`FLAG_WRONG_PATH`]).
//!
//! The escape scheme composes: a gap longer than `u32::MAX` is split by
//! an artificial discontinuity point whose far word is simply the next
//! sequential address, so arbitrarily long runs encode without widening
//! the common-case record.
//!
//! For the synthetic Table 4 workloads (roughly one branch in five
//! instructions) this lands near 3 bytes per instruction — more than 10×
//! smaller than the record form — and, more importantly, lets the core
//! replay a whole non-branch run as one batched step instead of
//! materializing a `TraceInstr` per instruction.

use std::sync::Arc;

use crate::addr::InstAddr;
use crate::branch::{BranchKind, BranchRec};
use crate::instr::TraceInstr;
use crate::Trace;

/// Bits 0–2 of [`BranchPoint::flags`]: the kind code. Values 0–4 map to
/// [`BranchKind`]; [`KIND_PLAIN`] marks a point with no branch record.
pub const KIND_MASK: u16 = 0b111;
/// Kind code for a non-branch point (discontinuities, wrong-path plain
/// instructions).
pub const KIND_PLAIN: u16 = 5;
/// The branch was taken.
pub const FLAG_TAKEN: u16 = 1 << 3;
/// The target does not fit `target_delta`; it is the next far word.
pub const FLAG_FAR: u16 = 1 << 4;
/// Discontinuity: the point consumes no instruction, and the stream
/// resumes at the address in the next far word. Used for asynchronous
/// control transfers in hardware traces and for `gap` overflow splits.
pub const FLAG_DISC: u16 = 1 << 5;
/// Wrong-path record: the instruction's address comes from the far
/// stream and the architectural flow is unaffected by it.
pub const FLAG_WRONG_PATH: u16 = 1 << 6;

/// Decoded span of one packed length-code byte (four 2-bit codes).
///
/// Replay's run kernel advances four instructions at a time: one load of
/// the packed byte plus one [`GROUP_LUT`] lookup replaces four 2-bit
/// extractions, and `last_off` lets a single I-cache line comparison
/// cover the whole group (addresses inside a run are strictly
/// increasing, so if the group's last instruction is still in the
/// current line, all four are).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSpan {
    /// Sum of all four instruction lengths in bytes.
    pub total: u8,
    /// Offset of the fourth instruction from the first (sum of the
    /// first three lengths).
    pub last_off: u8,
}

/// Length in bytes of the 2-bit code `c` (0/1/2 → 2/4/6).
const fn code_len(c: u8) -> u8 {
    ((c & 3) + 1) * 2
}

const fn build_group_lut() -> [GroupSpan; 256] {
    let mut lut = [GroupSpan { total: 0, last_off: 0 }; 256];
    let mut b = 0usize;
    while b < 256 {
        let byte = b as u8;
        let l0 = code_len(byte);
        let l1 = code_len(byte >> 2);
        let l2 = code_len(byte >> 4);
        lut[b] = GroupSpan { total: l0 + l1 + l2 + code_len(byte >> 6), last_off: l0 + l1 + l2 };
        b += 1;
    }
    lut
}

/// Group-decode table over packed length-code byte values. The code
/// value 3 never occurs in a valid stream (lengths are 2/4/6), but the
/// table still maps it (to an 8-byte length) so a corrupt byte cannot
/// index out of bounds.
pub static GROUP_LUT: [GroupSpan; 256] = build_group_lut();

/// One packed branch point.
///
/// `gap` counts the sequential non-branch instructions between the
/// previous point and this one; their addresses are implied by the
/// segment start and the length-code stream. `target_delta` is relative
/// to the point's own address, mod 2⁶⁴ — branch targets cluster near
/// their branch, so 32 bits cover all but pathological transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct BranchPoint {
    /// Sequential instructions since the previous point.
    pub gap: u32,
    /// Signed displacement from the point's address to the target.
    pub target_delta: i32,
    /// Packed kind / taken / far / disc / wrong-path bits.
    pub flags: u16,
}

const fn kind_code(k: BranchKind) -> u16 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn code_kind(c: u16) -> BranchKind {
    match c {
        0 => BranchKind::Conditional,
        1 => BranchKind::Unconditional,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        _ => BranchKind::Indirect,
    }
}

/// The stream cannot be compact-encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An instruction length outside the z/Architecture 2/4/6 set.
    UnsupportedLen(u8),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::UnsupportedLen(l) => {
                write!(f, "instruction length {l} is not compact-encodable (expected 2/4/6)")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// The streams handed to [`CompactTrace::from_parts`] are mutually
/// inconsistent: replaying them would index out of bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartsError {
    /// The length-code stream does not hold exactly one 2-bit code per
    /// instruction (`expected` packed bytes for `total` instructions).
    LenCodes {
        /// Packed bytes required by the instruction count.
        expected: usize,
        /// Packed bytes supplied.
        got: usize,
    },
    /// The far-word stream does not match the escapes the points
    /// consume.
    FarWords {
        /// Far words the point flags consume during decode.
        expected: usize,
        /// Far words supplied.
        got: usize,
    },
    /// Gaps, points and the tail gap do not sum to the instruction
    /// count.
    Total {
        /// Instructions implied by gaps + consuming points + tail gap.
        expected: u64,
        /// Instruction count supplied.
        got: u64,
    },
}

impl std::fmt::Display for PartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartsError::LenCodes { expected, got } => {
                write!(f, "length-code stream holds {got} packed bytes, need {expected}")
            }
            PartsError::FarWords { expected, got } => {
                write!(f, "far stream holds {got} words, point flags consume {expected}")
            }
            PartsError::Total { expected, got } => {
                write!(f, "streams encode {expected} instructions, header claims {got}")
            }
        }
    }
}

impl std::error::Error for PartsError {}

/// Recyclable backing buffers of a compact capture, analogous to the
/// record buffer recovered by
/// [`MaterializedTrace::into_records`](crate::MaterializedTrace::into_records).
#[derive(Debug, Default)]
pub struct CompactParts {
    points: Vec<BranchPoint>,
    len_codes: Vec<u8>,
    far: Vec<u64>,
}

impl CompactParts {
    /// Decomposes into the raw stream buffers — the trace store fills
    /// these from disk and hands them to [`CompactTrace::from_parts`],
    /// reusing the capacity a previous capture allocated.
    pub fn into_buffers(self) -> (Vec<BranchPoint>, Vec<u8>, Vec<u64>) {
        (self.points, self.len_codes, self.far)
    }

    /// Reassembles buffers recovered by [`Self::into_buffers`] for a
    /// later capture. Contents are irrelevant; captures clear them.
    pub fn from_buffers(points: Vec<BranchPoint>, len_codes: Vec<u8>, far: Vec<u64>) -> Self {
        Self { points, len_codes, far }
    }
}

/// Why a budgeted capture declined; carries the buffers back for reuse.
#[derive(Debug)]
pub enum CompactCaptureError {
    /// The stream is not representable (see [`EncodeError`]).
    Unencodable(EncodeError, CompactParts),
    /// The encoded size exceeded the byte budget.
    OverBudget(CompactParts),
}

impl CompactCaptureError {
    /// Recovers the backing buffers for a later capture.
    pub fn into_parts(self) -> CompactParts {
        match self {
            CompactCaptureError::Unencodable(_, p) | CompactCaptureError::OverBudget(p) => p,
        }
    }
}

/// The shared, immutable payload of a [`CompactTrace`].
#[derive(Debug)]
pub struct CompactBuf {
    start: InstAddr,
    total: u64,
    tail_gap: u64,
    points: Vec<BranchPoint>,
    len_codes: Vec<u8>,
    far: Vec<u64>,
}

impl CompactBuf {
    /// Instruction length at stream index `idx`, decoded from the 2-bit
    /// length-code stream.
    #[inline]
    pub fn len_at(&self, idx: u64) -> u8 {
        let byte = self.len_codes[(idx >> 2) as usize];
        (((byte >> ((idx & 3) << 1)) & 3) + 1) * 2
    }
}

/// A branch-point encoded instruction stream behind an [`Arc`]: clones
/// share one allocation, exactly like a materialized trace.
#[derive(Debug, Clone)]
pub struct CompactTrace {
    name: Arc<str>,
    buf: Arc<CompactBuf>,
}

struct Encoder {
    start: Option<InstAddr>,
    expected: Option<InstAddr>,
    gap: u32,
    total: u64,
    points: Vec<BranchPoint>,
    len_codes: Vec<u8>,
    far: Vec<u64>,
    budget: u64,
}

impl Encoder {
    fn new(len_hint: u64, parts: CompactParts, budget: u64) -> Self {
        let CompactParts { mut points, mut len_codes, mut far } = parts;
        points.clear();
        len_codes.clear();
        far.clear();
        // Sized for the ~1-in-5 branch density of the synthetic
        // workloads; a denser stream just reallocates.
        let hint = usize::try_from(len_hint).unwrap_or(0);
        points.reserve(hint / 4);
        len_codes.reserve(hint / 4 + 1);
        Self { start: None, expected: None, gap: 0, total: 0, points, len_codes, far, budget }
    }

    fn bytes(&self) -> u64 {
        encoded_bytes(self.points.len(), self.len_codes.len(), self.far.len())
    }

    fn parts(self) -> CompactParts {
        CompactParts { points: self.points, len_codes: self.len_codes, far: self.far }
    }

    #[inline]
    fn push_code(&mut self, code: u8) {
        let slot = (self.total & 3) << 1;
        if slot == 0 {
            self.len_codes.push(code);
        } else if let Some(last) = self.len_codes.last_mut() {
            *last |= code << slot;
        }
        self.total += 1;
    }

    fn push_point(&mut self, target_delta: i32, flags: u16) {
        self.points.push(BranchPoint { gap: self.gap, target_delta, flags });
        self.gap = 0;
    }

    /// Emits a discontinuity point resuming the stream at `next`.
    fn push_disc(&mut self, next: InstAddr) {
        self.far.push(next.raw());
        self.push_point(0, KIND_PLAIN | FLAG_DISC);
    }

    /// Encodes `rec`'s kind/taken/target relative to `addr`, spilling
    /// the target to the far stream when the delta overflows.
    fn branch_bits(&mut self, addr: InstAddr, rec: &BranchRec) -> (i32, u16) {
        let mut flags = kind_code(rec.kind);
        if rec.taken {
            flags |= FLAG_TAKEN;
        }
        // Mod-2^64 displacement: decode wraps the same way, so any
        // delta whose wrapped value fits i32 round-trips exactly.
        let delta = rec.target.raw().wrapping_sub(addr.raw()) as i64;
        match i32::try_from(delta) {
            Ok(d) => (d, flags),
            Err(_) => {
                self.far.push(rec.target.raw());
                (0, flags | FLAG_FAR)
            }
        }
    }

    fn push(&mut self, instr: &TraceInstr) -> Result<(), EncodeError> {
        let code = match instr.len {
            2 => 0u8,
            4 => 1,
            6 => 2,
            other => return Err(EncodeError::UnsupportedLen(other)),
        };
        if instr.wrong_path {
            // Off-path record: address from the far stream, flow
            // untouched (`expected` is deliberately not updated).
            self.far.push(instr.addr.raw());
            let (delta, flags) = match instr.branch {
                None => (0, KIND_PLAIN),
                Some(rec) => self.branch_bits(instr.addr, &rec),
            };
            self.push_point(delta, flags | FLAG_WRONG_PATH);
            self.push_code(code);
            return Ok(());
        }
        match self.expected {
            Some(e) if e == instr.addr => {}
            Some(_) => self.push_disc(instr.addr),
            None if self.start.is_none() => self.start = Some(instr.addr),
            None => self.push_disc(instr.addr),
        }
        match instr.branch {
            None => {
                if self.gap == u32::MAX {
                    // Run longer than the gap field: split it with an
                    // artificial discontinuity resuming in place.
                    self.push_disc(instr.addr);
                }
                self.gap += 1;
                self.push_code(code);
            }
            Some(rec) => {
                let (delta, flags) = self.branch_bits(instr.addr, &rec);
                self.push_point(delta, flags);
                self.push_code(code);
            }
        }
        self.expected = Some(instr.next_addr());
        Ok(())
    }

    fn finish(self, name: &str) -> CompactTrace {
        let buf = CompactBuf {
            start: self.start.unwrap_or(InstAddr::new(0)),
            total: self.total,
            tail_gap: u64::from(self.gap),
            points: self.points,
            len_codes: self.len_codes,
            far: self.far,
        };
        CompactTrace { name: name.into(), buf: Arc::new(buf) }
    }
}

const fn encoded_bytes(points: usize, len_code_bytes: usize, far_words: usize) -> u64 {
    points as u64 * std::mem::size_of::<BranchPoint>() as u64
        + len_code_bytes as u64
        + far_words as u64 * 8
}

impl CompactTrace {
    /// Encodes `trace`'s full stream into the compact form.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if the stream is not representable
    /// (instruction lengths outside 2/4/6).
    pub fn capture<T: Trace>(trace: &T) -> Result<Self, EncodeError> {
        Self::capture_within_into(trace, u64::MAX, CompactParts::default()).map_err(|e| match e {
            CompactCaptureError::Unencodable(err, _) => err,
            CompactCaptureError::OverBudget(_) => unreachable!("unlimited budget"),
        })
    }

    /// Encodes `trace` into recycled `parts`, aborting as soon as the
    /// encoded size exceeds `max_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`CompactCaptureError`] — carrying the buffers back for
    /// reuse — if the stream is unencodable or over budget.
    pub fn capture_within_into<T: Trace>(
        trace: &T,
        max_bytes: u64,
        parts: CompactParts,
    ) -> Result<Self, CompactCaptureError> {
        let mut enc = Encoder::new(trace.len(), parts, max_bytes);
        // Budget checks amortize over a block of instructions: a block
        // adds at most ~21 bytes/instruction, so the overshoot before a
        // check is bounded and the capture still aborts early on
        // multi-megabyte misfits.
        const CHECK_EVERY: u64 = 4096;
        let mut until_check = CHECK_EVERY;
        for instr in trace.iter() {
            if let Err(err) = enc.push(&instr) {
                return Err(CompactCaptureError::Unencodable(err, enc.parts()));
            }
            until_check -= 1;
            if until_check == 0 {
                until_check = CHECK_EVERY;
                if enc.bytes() > enc.budget {
                    return Err(CompactCaptureError::OverBudget(enc.parts()));
                }
            }
        }
        if enc.bytes() > enc.budget {
            return Err(CompactCaptureError::OverBudget(enc.parts()));
        }
        Ok(enc.finish(trace.name()))
    }

    /// Bytes of compact storage this capture occupies.
    pub fn bytes(&self) -> u64 {
        encoded_bytes(self.buf.points.len(), self.buf.len_codes.len(), self.buf.far.len())
    }

    /// Bytes per encoded instruction; 0 for an empty trace.
    pub fn bytes_per_instr(&self) -> f64 {
        if self.buf.total == 0 {
            0.0
        } else {
            self.bytes() as f64 / self.buf.total as f64
        }
    }

    /// Number of branch points (including discontinuities).
    pub fn points(&self) -> u64 {
        self.buf.points.len() as u64
    }

    /// Instruction length at stream index `idx`.
    #[inline]
    pub fn len_at(&self, idx: u64) -> u8 {
        self.buf.len_at(idx)
    }

    /// A cursor over the run/point structure, for batched replay.
    pub fn segments(&self) -> SegmentCursor<'_> {
        SegmentCursor::new(&self.buf)
    }

    /// Address one past a run — the terminating point's own address —
    /// by a pure length sum over the run's codes ([`GROUP_LUT`] totals
    /// for whole packed bytes). Replay uses this to learn the upcoming
    /// branch address before the accounting walk starts.
    #[inline]
    pub fn run_end(&self, run: &Run) -> InstAddr {
        let mut addr = run.start;
        let mut code = run.first_code;
        let end = run.first_code + run.count;
        while code < end && (code & 3) != 0 {
            addr = addr.add(u64::from(self.len_at(code)));
            code += 1;
        }
        let codes = &self.buf.len_codes;
        while code + 4 <= end {
            addr = addr.add(u64::from(GROUP_LUT[usize::from(codes[(code >> 2) as usize])].total));
            code += 4;
        }
        while code < end {
            addr = addr.add(u64::from(self.len_at(code)));
            code += 1;
        }
        addr
    }

    /// Recovers the backing buffers for reuse by a later
    /// [`Self::capture_within_into`]; `None` while clones are alive.
    pub fn into_parts(self) -> Option<CompactParts> {
        let CompactBuf { points, len_codes, far, .. } = Arc::try_unwrap(self.buf).ok()?;
        Some(CompactParts { points, len_codes, far })
    }

    /// Address of the first on-path instruction.
    pub fn start_addr(&self) -> InstAddr {
        self.buf.start
    }

    /// Sequential instructions after the final branch point.
    pub fn tail_gap(&self) -> u64 {
        self.buf.tail_gap
    }

    /// The branch-point stream.
    pub fn branch_points(&self) -> &[BranchPoint] {
        &self.buf.points
    }

    /// The packed 2-bit length-code stream (four codes per byte).
    pub fn len_code_stream(&self) -> &[u8] {
        &self.buf.len_codes
    }

    /// The far-word escape stream.
    pub fn far_stream(&self) -> &[u64] {
        &self.buf.far
    }

    /// Rebuilds a trace from raw streams (the on-disk store's loader),
    /// checking the structural invariants replay relies on: one length
    /// code per instruction, far words matching the escapes the point
    /// flags consume, and gaps summing to the instruction count. A
    /// trace passing these checks replays without indexing out of
    /// bounds; byte-level integrity is the store's checksum layer.
    ///
    /// # Errors
    ///
    /// Returns [`PartsError`] naming the inconsistent stream.
    pub fn from_parts(
        name: &str,
        start: InstAddr,
        total: u64,
        tail_gap: u64,
        points: Vec<BranchPoint>,
        len_codes: Vec<u8>,
        far: Vec<u64>,
    ) -> Result<Self, PartsError> {
        let expected_code_bytes = usize::try_from(total.div_ceil(4)).unwrap_or(usize::MAX);
        if len_codes.len() != expected_code_bytes {
            return Err(PartsError::LenCodes {
                expected: expected_code_bytes,
                got: len_codes.len(),
            });
        }
        let mut far_used = 0usize;
        let mut encoded = tail_gap;
        for p in &points {
            encoded += u64::from(p.gap);
            if p.flags & FLAG_DISC != 0 {
                far_used += 1;
            } else {
                encoded += 1;
                far_used += usize::from(p.flags & FLAG_WRONG_PATH != 0)
                    + usize::from(p.flags & FLAG_FAR != 0);
            }
        }
        if far.len() != far_used {
            return Err(PartsError::FarWords { expected: far_used, got: far.len() });
        }
        if encoded != total {
            return Err(PartsError::Total { expected: encoded, got: total });
        }
        let buf = CompactBuf { start, total, tail_gap, points, len_codes, far };
        Ok(CompactTrace { name: name.into(), buf: Arc::new(buf) })
    }
}

impl Trace for CompactTrace {
    type Iter<'a> = CompactIter<'a>;

    fn iter(&self) -> CompactIter<'_> {
        CompactIter::new(&self.buf)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> u64 {
        self.buf.total
    }
}

/// One maximal run of sequential non-branch instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Address of the run's first instruction.
    pub start: InstAddr,
    /// Number of instructions in the run (possibly 0).
    pub count: u64,
    /// Stream index of the run's first length code; the caller walks
    /// codes `first_code .. first_code + count` to advance addresses.
    pub first_code: u64,
}

/// Streaming decoder over a [`CompactTrace`]'s run/point structure.
///
/// The protocol alternates [`SegmentCursor::next_run`] and
/// [`SegmentCursor::finish_run`]: after receiving a [`Run`], the caller
/// walks its `count` length codes, accumulating addresses from
/// `run.start`, and passes the resulting end address (the address *after*
/// the run, where the point sits) to `finish_run`, which decodes the
/// point and returns its instruction — or `None` for a discontinuity or
/// the end of the stream.
pub struct SegmentCursor<'a> {
    buf: &'a CompactBuf,
    point_idx: usize,
    far_idx: usize,
    code_idx: u64,
    cur: InstAddr,
    tail_done: bool,
}

impl<'a> SegmentCursor<'a> {
    fn new(buf: &'a CompactBuf) -> Self {
        Self { buf, point_idx: 0, far_idx: 0, code_idx: 0, cur: buf.start, tail_done: false }
    }

    /// The next non-branch run, or `None` when the stream is exhausted.
    pub fn next_run(&mut self) -> Option<Run> {
        let count = match self.buf.points.get(self.point_idx) {
            Some(p) => u64::from(p.gap),
            None if !self.tail_done => {
                self.tail_done = true;
                self.buf.tail_gap
            }
            None => return None,
        };
        let run = Run { start: self.cur, count, first_code: self.code_idx };
        self.code_idx += count;
        Some(run)
    }

    #[inline]
    fn next_far(&mut self) -> InstAddr {
        let w = self.buf.far[self.far_idx];
        self.far_idx += 1;
        InstAddr::new(w)
    }

    /// Decodes the point terminating the run returned by the last
    /// [`Self::next_run`]. `end` must be the address one past the run's
    /// final instruction (equal to `run.start` for an empty run).
    ///
    /// Returns the point's instruction, or `None` for a discontinuity
    /// (the cursor jumps to its resume address) and at end of stream.
    pub fn finish_run(&mut self, end: InstAddr) -> Option<TraceInstr> {
        let p = *self.buf.points.get(self.point_idx)?;
        self.point_idx += 1;
        if p.flags & FLAG_DISC != 0 {
            self.cur = self.next_far();
            return None;
        }
        let len = self.buf.len_at(self.code_idx);
        self.code_idx += 1;
        let wrong_path = p.flags & FLAG_WRONG_PATH != 0;
        let addr = if wrong_path { self.next_far() } else { end };
        let branch = if p.flags & KIND_MASK == KIND_PLAIN {
            None
        } else {
            let target = if p.flags & FLAG_FAR != 0 {
                self.next_far()
            } else {
                InstAddr::new(addr.raw().wrapping_add(p.target_delta as i64 as u64))
            };
            Some(BranchRec {
                kind: code_kind(p.flags & KIND_MASK),
                taken: p.flags & FLAG_TAKEN != 0,
                target,
            })
        };
        let instr = TraceInstr { addr, len, wrong_path, branch };
        // Wrong-path records never redirect the architectural flow.
        self.cur = if wrong_path { end } else { instr.next_addr() };
        Some(instr)
    }
}

/// Per-instruction iterator over a compact trace, reconstructing the
/// exact [`TraceInstr`] stream that was encoded.
pub struct CompactIter<'a> {
    cursor: SegmentCursor<'a>,
    run_left: u64,
    code_idx: u64,
    addr: InstAddr,
    pending_point: bool,
}

impl<'a> CompactIter<'a> {
    fn new(buf: &'a CompactBuf) -> Self {
        Self {
            cursor: SegmentCursor::new(buf),
            run_left: 0,
            code_idx: 0,
            addr: buf.start,
            pending_point: false,
        }
    }
}

impl Iterator for CompactIter<'_> {
    type Item = TraceInstr;

    fn next(&mut self) -> Option<TraceInstr> {
        loop {
            if self.run_left > 0 {
                let len = self.cursor.buf.len_at(self.code_idx);
                self.code_idx += 1;
                self.run_left -= 1;
                let instr = TraceInstr::plain(self.addr, len);
                self.addr = self.addr.add(u64::from(len));
                return Some(instr);
            }
            if self.pending_point {
                self.pending_point = false;
                if let Some(instr) = self.cursor.finish_run(self.addr) {
                    return Some(instr);
                }
                continue;
            }
            let run = self.cursor.next_run()?;
            self.run_left = run.count;
            self.code_idx = run.first_code;
            self.addr = run.start;
            self.pending_point = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecTrace;

    fn roundtrip(instrs: Vec<TraceInstr>) {
        let vt = VecTrace::new("t", instrs);
        let ct = CompactTrace::capture(&vt).expect("encodable");
        assert_eq!(ct.len(), vt.len());
        assert_eq!(ct.name(), "t");
        let decoded: Vec<_> = ct.iter().collect();
        assert_eq!(decoded, vt.records(), "round trip diverged");
    }

    #[test]
    fn empty_trace_roundtrips() {
        roundtrip(vec![]);
    }

    #[test]
    fn sequential_run_roundtrips() {
        let mut a = InstAddr::new(0x1000);
        let mut v = Vec::new();
        for len in [2u8, 4, 6, 6, 2, 4] {
            v.push(TraceInstr::plain(a, len));
            a = a.add(u64::from(len));
        }
        roundtrip(v);
    }

    #[test]
    fn branches_and_runs_roundtrip() {
        let mut v = Vec::new();
        let mut a = InstAddr::new(0x4000);
        for i in 0..10 {
            v.push(TraceInstr::plain(a, 4));
            a = a.add(4);
            let taken = i % 2 == 0;
            let target = InstAddr::new(0x4000 + i * 0x40);
            let rec = if taken {
                BranchRec::taken(BranchKind::Conditional, target)
            } else {
                BranchRec::not_taken(target)
            };
            v.push(TraceInstr::branch(a, 6, rec));
            a = if taken { target } else { a.add(6) };
        }
        roundtrip(v);
    }

    #[test]
    fn discontinuities_roundtrip() {
        // Address stream that jumps without a branch record, as an
        // asynchronous interrupt transfer would in a hardware trace.
        let v = vec![
            TraceInstr::plain(InstAddr::new(0x100), 4),
            TraceInstr::plain(InstAddr::new(0x9000), 2),
            TraceInstr::plain(InstAddr::new(0x9002), 6),
            TraceInstr::plain(InstAddr::new(0x40), 2),
        ];
        roundtrip(v);
    }

    #[test]
    fn far_targets_roundtrip() {
        // Target further than ±2 GiB forces the far-word escape.
        let rec = BranchRec::taken(BranchKind::Call, InstAddr::new(0x1_0000_0000_0000));
        let v = vec![
            TraceInstr::branch(InstAddr::new(0x100), 6, rec),
            TraceInstr::plain(InstAddr::new(0x1_0000_0000_0000), 4),
        ];
        roundtrip(v);
    }

    #[test]
    fn wrong_path_records_roundtrip() {
        let rec = BranchRec::taken(BranchKind::Conditional, InstAddr::new(0x80));
        let v = vec![
            TraceInstr::plain(InstAddr::new(0x100), 4),
            TraceInstr::plain(InstAddr::new(0x7000), 2).wrong_path(),
            TraceInstr::branch(InstAddr::new(0x7002), 4, rec).wrong_path(),
            TraceInstr::plain(InstAddr::new(0x104), 6),
        ];
        roundtrip(v);
    }

    #[test]
    fn leading_wrong_path_records_roundtrip() {
        let v = vec![
            TraceInstr::plain(InstAddr::new(0x7000), 2).wrong_path(),
            TraceInstr::plain(InstAddr::new(0x100), 4),
        ];
        roundtrip(v);
    }

    #[test]
    fn unsupported_length_is_rejected() {
        let vt = VecTrace::new("t", vec![TraceInstr::plain(InstAddr::new(0), 3)]);
        assert!(matches!(CompactTrace::capture(&vt), Err(EncodeError::UnsupportedLen(3))));
        match CompactTrace::capture_within_into(&vt, u64::MAX, CompactParts::default()) {
            Err(CompactCaptureError::Unencodable(EncodeError::UnsupportedLen(3), _)) => {}
            other => panic!("expected Unencodable, got {other:?}"),
        }
    }

    #[test]
    fn over_budget_capture_declines_and_recycles() {
        let mut v = Vec::new();
        let mut a = InstAddr::new(0x1000);
        for _ in 0..100 {
            v.push(TraceInstr::plain(a, 4));
            a = a.add(4);
        }
        let vt = VecTrace::new("t", v);
        let full = CompactTrace::capture(&vt).unwrap();
        let need = full.bytes();
        match CompactTrace::capture_within_into(&vt, need - 1, CompactParts::default()) {
            Err(CompactCaptureError::OverBudget(parts)) => {
                // The recovered buffers admit a successful capture.
                let again = CompactTrace::capture_within_into(&vt, need, parts).unwrap();
                assert!(again.iter().eq(vt.iter()));
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
    }

    #[test]
    fn into_parts_recovers_sole_owner_buffers() {
        let vt = VecTrace::new("t", vec![TraceInstr::plain(InstAddr::new(0x10), 2)]);
        let ct = CompactTrace::capture(&vt).unwrap();
        let clone = ct.clone();
        assert!(ct.into_parts().is_none(), "shared buffers stay shared");
        assert!(clone.into_parts().is_some(), "last owner recovers them");
    }

    #[test]
    fn point_record_is_twelve_bytes() {
        assert_eq!(std::mem::size_of::<BranchPoint>(), 12);
    }

    #[test]
    fn group_lut_matches_per_code_decode() {
        for b in 0u16..256 {
            let byte = b as u8;
            let lens: Vec<u8> = (0..4).map(|i| (((byte >> (i * 2)) & 3) + 1) * 2).collect();
            let span = GROUP_LUT[b as usize];
            assert_eq!(span.total, lens.iter().sum::<u8>(), "byte {byte:#04x}");
            assert_eq!(span.last_off, lens[..3].iter().sum::<u8>(), "byte {byte:#04x}");
        }
    }

    /// A stream exercising every escape: far target, wrong-path records,
    /// a discontinuity and a run tail.
    fn escape_soup() -> VecTrace {
        let far = BranchRec::taken(BranchKind::Call, InstAddr::new(0x1_0000_0000_0000));
        let mut v = vec![
            TraceInstr::plain(InstAddr::new(0x100), 4),
            TraceInstr::branch(InstAddr::new(0x104), 6, far),
            TraceInstr::plain(InstAddr::new(0x1_0000_0000_0000), 2),
            TraceInstr::plain(InstAddr::new(0x7000), 2).wrong_path(),
            TraceInstr::plain(InstAddr::new(0x9000), 4), // discontinuity
        ];
        for i in 0..20u64 {
            v.push(TraceInstr::plain(InstAddr::new(0x9004 + i * 6), 6));
        }
        VecTrace::new("soup", v)
    }

    #[test]
    fn from_parts_rebuilds_the_exact_stream() {
        let vt = escape_soup();
        let ct = CompactTrace::capture(&vt).unwrap();
        let rebuilt = CompactTrace::from_parts(
            ct.name(),
            ct.start_addr(),
            ct.len(),
            ct.tail_gap(),
            ct.branch_points().to_vec(),
            ct.len_code_stream().to_vec(),
            ct.far_stream().to_vec(),
        )
        .expect("streams are consistent");
        assert!(rebuilt.iter().eq(vt.iter()), "rebuilt stream diverged");
        assert_eq!(rebuilt.bytes(), ct.bytes());
    }

    #[test]
    fn from_parts_rejects_inconsistent_streams() {
        let ct = CompactTrace::capture(&escape_soup()).unwrap();
        let (start, total, tail) = (ct.start_addr(), ct.len(), ct.tail_gap());
        let (points, codes, far) =
            (ct.branch_points().to_vec(), ct.len_code_stream().to_vec(), ct.far_stream().to_vec());
        let mut short_far = far.clone();
        short_far.pop();
        assert!(matches!(
            CompactTrace::from_parts(
                "t",
                start,
                total,
                tail,
                points.clone(),
                codes.clone(),
                short_far
            ),
            Err(PartsError::FarWords { .. })
        ));
        let mut short_codes = codes.clone();
        short_codes.pop();
        assert!(matches!(
            CompactTrace::from_parts(
                "t",
                start,
                total,
                tail,
                points.clone(),
                short_codes,
                far.clone()
            ),
            Err(PartsError::LenCodes { .. })
        ));
        // A header claiming one extra instruction needs one extra code
        // byte to get past the length check, but the gap sum then
        // disagrees.
        let mut padded_codes = codes.clone();
        if (total + 1).div_ceil(4) != total.div_ceil(4) {
            padded_codes.push(0);
        }
        assert!(matches!(
            CompactTrace::from_parts("t", start, total + 1, tail, points, padded_codes, far),
            Err(PartsError::Total { .. })
        ));
    }
}
