//! Property tests: a [`MaterializedTrace`] replay is
//! instruction-for-instruction identical to walking the generator it was
//! captured from, for arbitrary profiles, seeds and lengths — including
//! the length-0 edge and streams larger than a materialization cap
//! (where capture declines and callers fall back to the walker).

use zbp_support::rng::SmallRng;
use zbp_trace::profile::WorkloadProfile;
use zbp_trace::{MaterializedTrace, Trace};

#[test]
fn replay_matches_walker_stream_for_random_profiles() {
    let mut rng = SmallRng::seed_from_u64(0x0B5E55ED);
    let profiles = WorkloadProfile::all_table4();
    for round in 0..16 {
        let p = &profiles[(rng.next_u64() % profiles.len() as u64) as usize];
        let seed = rng.next_u64();
        let len = rng.next_u64() % 30_000;
        let gen = p.build_with_len(seed, len);
        let mat = MaterializedTrace::capture(&gen);
        assert_eq!(mat.len(), len, "round {round}: {} at seed {seed:#x}", p.name);
        assert_eq!(mat.name(), gen.name());
        assert!(
            mat.iter().eq(gen.iter()),
            "round {round}: replay diverged from the walker ({} seed {seed:#x} len {len})",
            p.name
        );
        // Replays are re-runnable: a second pass is identical too.
        assert!(mat.iter().eq(gen.iter()));
    }
}

#[test]
fn zero_length_capture_is_an_empty_replay() {
    let gen = WorkloadProfile::zlinux_informix().build_with_len(9, 0);
    let mat = MaterializedTrace::capture(&gen);
    assert_eq!(mat.len(), 0);
    assert!(mat.iter().eq(gen.iter()));
}

#[test]
fn over_cap_streams_fall_back_to_the_walker() {
    let mut rng = SmallRng::seed_from_u64(0xCA9);
    let profiles = WorkloadProfile::all_table4();
    for _ in 0..8 {
        let p = &profiles[(rng.next_u64() % profiles.len() as u64) as usize];
        let len = 1 + rng.next_u64() % 10_000;
        let gen = p.build_with_len(rng.next_u64(), len);
        // A cap one record short of the stream declines the capture…
        let cap = MaterializedTrace::estimated_bytes(len - 1);
        assert!(MaterializedTrace::capture_within(&gen, cap).is_none());
        // …and the caller's fallback (walking `gen` directly) is, by
        // construction, the stream an exact-cap capture would replay.
        let exact =
            MaterializedTrace::capture_within(&gen, MaterializedTrace::estimated_bytes(len))
                .expect("an exact cap admits the capture");
        assert!(exact.iter().eq(gen.iter()));
    }
}
