//! Randomized tests on the synthetic workload generator, driven by the
//! deterministic [`zbp_support::rng::SmallRng`].

use std::collections::HashSet;
use zbp_support::rng::SmallRng;
use zbp_trace::gen::layout::{LayoutParams, Program, Terminator};
use zbp_trace::gen::walker::Walker;
use zbp_trace::{Trace, TraceStats, VecTrace};

fn sample_layout(rng: &mut SmallRng) -> LayoutParams {
    let trip_lo = rng.random_range(2u16..6);
    let trip_hi = rng.random_range(6u16..30);
    LayoutParams {
        target_sites: rng.random_range(400u32..3_000),
        taken_fraction: 0.45 + 0.40 * rng.random::<f64>(),
        loop_trip: (trip_lo, trip_hi),
        ..LayoutParams::default()
    }
}

#[test]
fn programs_are_structurally_sound() {
    let mut rng = SmallRng::seed_from_u64(0xA1);
    for _ in 0..16 {
        let params = sample_layout(&mut rng);
        let seed = rng.random_range(0u64..500);
        let p = Program::generate(&params, seed);
        assert!(p.n_functions() > 0);
        assert!(p.reachable_sites > 0);
        assert!(p.reachable_taken_sites <= p.reachable_sites);
        for f in &p.functions {
            assert!(!f.blocks.is_empty());
            let ends_in_return = matches!(f.blocks.last().unwrap().term, Terminator::Return { .. });
            assert!(ends_in_return);
            // Blocks contiguous and targets in range.
            let n = f.blocks.len() as u32;
            for w in f.blocks.windows(2) {
                assert_eq!(w[0].start.add(w[0].size_bytes()), w[1].start);
            }
            for b in &f.blocks {
                match &b.term {
                    Terminator::Cond { target_block, .. }
                    | Terminator::Jump { target_block, .. } => assert!(*target_block < n),
                    Terminator::Indirect { targets, .. } => {
                        assert!(!targets.is_empty());
                        assert!(targets.iter().all(|&t| t < n));
                    }
                    Terminator::Call { callee, .. } => assert!(*callee < p.n_functions()),
                    _ => {}
                }
            }
        }
    }
}

#[test]
fn walks_emit_exactly_the_limit_and_stay_on_known_sites() {
    let mut rng = SmallRng::seed_from_u64(0xA2);
    for _ in 0..16 {
        let params = sample_layout(&mut rng);
        let seed = rng.random_range(0u64..500);
        let len = rng.random_range(500u64..5_000);
        let p = Program::generate(&params, seed);
        let sites: HashSet<u64> = p.branch_site_addrs().map(|a| a.raw()).collect();
        let mut count = 0u64;
        for i in Walker::new(&p, seed ^ 7, len) {
            count += 1;
            if i.is_branch() {
                assert!(sites.contains(&i.addr.raw()));
            }
        }
        assert_eq!(count, len);
    }
}

#[test]
fn taken_fraction_of_long_walks_tracks_the_target() {
    let mut rng = SmallRng::seed_from_u64(0xA3);
    for _ in 0..8 {
        let taken_fraction = 0.5 + 0.3 * rng.random::<f64>();
        let seed = rng.random_range(0u64..100);
        let params =
            LayoutParams { target_sites: 2_000, taken_fraction, ..LayoutParams::default() };
        let p = Program::generate(&params, seed);
        let trace: VecTrace = Walker::new(&p, seed, 120_000).collect();
        let stats = TraceStats::from_iter_records(trace.iter());
        let got = stats.unique_taken as f64 / stats.unique_branches.max(1) as f64;
        // The never-taken site quota controls this ratio; dynamic
        // sampling adds slack.
        assert!(
            (got - taken_fraction).abs() < 0.15,
            "ever-taken ratio {got:.3} vs target {taken_fraction:.3}"
        );
    }
}

#[test]
fn different_walk_seeds_share_the_static_image() {
    let mut rng = SmallRng::seed_from_u64(0xA4);
    for _ in 0..16 {
        let params = sample_layout(&mut rng);
        let seed = rng.random_range(0u64..100);
        let p = Program::generate(&params, seed);
        let sites_a: HashSet<u64> =
            Walker::new(&p, 1, 3_000).filter(|i| i.is_branch()).map(|i| i.addr.raw()).collect();
        let sites_b: HashSet<u64> =
            Walker::new(&p, 2, 3_000).filter(|i| i.is_branch()).map(|i| i.addr.raw()).collect();
        // Different dynamic paths, but both must be subsets of the image.
        let all: HashSet<u64> = p.branch_site_addrs().map(|a| a.raw()).collect();
        assert!(sites_a.is_subset(&all));
        assert!(sites_b.is_subset(&all));
    }
}

mod reuse_distance_props {
    use std::collections::{HashMap, HashSet};
    use zbp_support::rng::SmallRng;
    use zbp_trace::analysis::ReuseProfile;
    use zbp_trace::{BranchKind, BranchRec, InstAddr, TraceInstr};

    fn branch(site: u64) -> TraceInstr {
        TraceInstr::branch(
            InstAddr::new(site * 16),
            4,
            BranchRec::taken(BranchKind::Conditional, InstAddr::new(0x40)),
        )
    }

    /// O(n^2) reference: distinct sites strictly between consecutive
    /// executions of the same site.
    fn brute_force(sites: &[u64], bounds: &[u64]) -> (Vec<u64>, u64) {
        let mut counts = vec![0u64; bounds.len() + 1];
        let mut cold = 0u64;
        let mut last: HashMap<u64, usize> = HashMap::new();
        for (i, &s) in sites.iter().enumerate() {
            match last.insert(s, i) {
                None => cold += 1,
                Some(prev) => {
                    let distinct: HashSet<u64> = sites[prev + 1..i].iter().cloned().collect();
                    let d = distinct.len() as u64;
                    let bucket = bounds.iter().position(|&b| d < b).unwrap_or(bounds.len());
                    counts[bucket] += 1;
                }
            }
        }
        (counts, cold)
    }

    #[test]
    fn fenwick_profile_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(0xA5);
        for _ in 0..32 {
            let n = rng.random_range(1usize..120);
            let sites: Vec<u64> = (0..n).map(|_| rng.random_range(1u64..20)).collect();
            let bounds = [1u64, 2, 4, 8, 16];
            let instrs: Vec<TraceInstr> = sites.iter().map(|&s| branch(s)).collect();
            let profile = ReuseProfile::collect_with_bounds(instrs.iter().cloned(), &bounds);
            let (expect_counts, expect_cold) = brute_force(&sites, &bounds);
            assert_eq!(profile.counts, expect_counts);
            assert_eq!(profile.cold_executions, expect_cold);
            assert_eq!(profile.total_branches, sites.len() as u64);
        }
    }
}
