//! Randomized round-trip tests on the compact branch-point encoding,
//! driven by the deterministic [`zbp_support::rng::SmallRng`]: arbitrary
//! instruction streams mixing every escape the format defines must
//! decode back to the exact record stream, and the encoding must earn
//! its keep (at most a third of the record bytes) on the figure-2
//! workloads it was built for.

use zbp_support::rng::SmallRng;
use zbp_trace::profile::WorkloadProfile;
use zbp_trace::{
    BranchKind, BranchRec, CompactTrace, InstAddr, MaterializedTrace, Trace, TraceInstr, VecTrace,
};

const LENS: [u8; 3] = [2, 4, 6];
const KINDS: [BranchKind; 5] = [
    BranchKind::Conditional,
    BranchKind::Unconditional,
    BranchKind::Call,
    BranchKind::Return,
    BranchKind::Indirect,
];

fn roundtrip(instrs: Vec<TraceInstr>) {
    let vt = VecTrace::new("prop", instrs);
    let ct = CompactTrace::capture(&vt).expect("stream must be encodable");
    assert_eq!(ct.len(), vt.len());
    let decoded: Vec<TraceInstr> = ct.iter().collect();
    assert_eq!(decoded, vt.records(), "compact round trip diverged");
}

/// A target address for a branch at `addr`: near (same 4 KB block),
/// forward or backward across block boundaries, or beyond the ±2 GiB
/// delta range (forcing the far-word escape).
fn random_target(rng: &mut SmallRng, addr: InstAddr) -> InstAddr {
    let base = addr.raw();
    let t = match rng.random_range(0u32..4) {
        0 => base ^ rng.random_range(2u64..4096),
        1 => base.wrapping_add(rng.random_range(4096u64..1 << 24)),
        2 => base.wrapping_sub(rng.random_range(4096u64..1 << 24)),
        _ => base.wrapping_add(0x1_0000_0000_0000 + rng.random_range(0u64..1 << 20)),
    };
    // Instruction addresses are halfword-aligned on z.
    InstAddr::new(t & !1)
}

/// One random stream exercising runs (occasionally longer than 255
/// instructions), every branch kind, cross-block and far targets,
/// wrong-path markers and asynchronous discontinuities.
fn random_stream(rng: &mut SmallRng, segments: usize) -> Vec<TraceInstr> {
    let mut v = Vec::new();
    let mut addr = InstAddr::new(rng.random_range(0x1000u64..1 << 40) & !1);
    for _ in 0..segments {
        let run = match rng.random_range(0u32..10) {
            0..=6 => rng.random_range(0u64..12),
            7 | 8 => rng.random_range(12u64..80),
            _ => rng.random_range(256u64..600),
        };
        for _ in 0..run {
            let len = LENS[rng.random_range(0usize..3)];
            v.push(TraceInstr::plain(addr, len));
            addr = addr.add(u64::from(len));
        }
        match rng.random_range(0u32..10) {
            // A resolved branch, taken or not.
            0..=5 => {
                let len = LENS[rng.random_range(0usize..3)];
                let kind = KINDS[rng.random_range(0usize..5)];
                let target = random_target(rng, addr);
                let taken = rng.random::<bool>();
                let rec = if taken {
                    BranchRec::taken(kind, target)
                } else {
                    BranchRec::not_taken(target)
                };
                v.push(TraceInstr::branch(addr, len, rec));
                addr = if taken { target } else { addr.add(u64::from(len)) };
            }
            // A burst of wrong-path records; architectural flow resumes
            // at the same address afterwards.
            6 | 7 => {
                let mut off = random_target(rng, addr);
                for _ in 0..rng.random_range(1u32..5) {
                    let len = LENS[rng.random_range(0usize..3)];
                    let i = if rng.random::<bool>() {
                        let rec = BranchRec::taken(
                            KINDS[rng.random_range(0usize..5)],
                            random_target(rng, off),
                        );
                        TraceInstr::branch(off, len, rec)
                    } else {
                        TraceInstr::plain(off, len)
                    };
                    v.push(i.wrong_path());
                    off = off.add(u64::from(len));
                }
            }
            // An asynchronous discontinuity: the stream jumps with no
            // branch record at all.
            _ => addr = random_target(rng, addr),
        }
    }
    v
}

#[test]
fn arbitrary_streams_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xC0);
    for case in 0..24 {
        let segments = 4 + case * 3;
        roundtrip(random_stream(&mut rng, segments));
    }
}

#[test]
fn long_runs_cross_length_code_byte_boundaries() {
    // Runs far longer than 255 instructions, with lengths chosen so runs
    // end at every phase of the packed 4-codes-per-byte stream.
    let mut rng = SmallRng::seed_from_u64(0xC1);
    for _ in 0..6 {
        let mut v = Vec::new();
        let mut addr = InstAddr::new(0x10_0000);
        for _ in 0..3 {
            for _ in 0..rng.random_range(300u64..1200) {
                let len = LENS[rng.random_range(0usize..3)];
                v.push(TraceInstr::plain(addr, len));
                addr = addr.add(u64::from(len));
            }
            let target =
                InstAddr::new(addr.raw().wrapping_sub(rng.random_range(4096u64..65536)) & !1);
            v.push(TraceInstr::branch(addr, 4, BranchRec::taken(BranchKind::Conditional, target)));
            addr = target;
        }
        roundtrip(v);
    }
}

#[test]
fn backward_and_forward_targets_span_blocks() {
    // A branch ping-ponging across 4 KB block boundaries in both
    // directions, plus one far target outside the ±2 GiB delta range.
    let mut v = Vec::new();
    let mut addr = InstAddr::new(0x80_0000);
    for hop in [4096i64, -4096, 12_288, -20_480, 1 << 30, -(1 << 30), 0x7FFF_FFFE, -0x7FFF_FFFE] {
        v.push(TraceInstr::plain(addr, 4));
        addr = addr.add(4);
        let target = InstAddr::new(addr.raw().wrapping_add(hop as u64) & !1);
        v.push(TraceInstr::branch(addr, 6, BranchRec::taken(BranchKind::Unconditional, target)));
        addr = target;
    }
    let far = InstAddr::new(addr.raw().wrapping_add(0x2_0000_0000) & !1);
    v.push(TraceInstr::branch(addr, 6, BranchRec::taken(BranchKind::Call, far)));
    v.push(TraceInstr::plain(far, 2));
    roundtrip(v);
}

#[test]
fn generator_profiles_roundtrip() {
    // The real consumers: every Table 4 profile's synthetic stream must
    // compact-encode and decode back to the generator's exact records.
    for profile in WorkloadProfile::all_table4() {
        let gen = profile.build_with_len(0xEC12, 20_000);
        let ct = CompactTrace::capture(&gen).expect("generator streams are encodable");
        assert_eq!(ct.len(), gen.len());
        assert!(ct.iter().eq(gen.iter()), "compact round trip diverged for profile {}", gen.name());
    }
}

#[test]
fn compact_is_under_a_third_of_record_bytes_on_fig2_workloads() {
    // The headline claim of the encoding: on the figure-2 grid's
    // workloads it stores the stream in less than a third of the record
    // form's bytes (in practice ~10x smaller at ~1-in-5 branch density).
    for profile in WorkloadProfile::all_table4() {
        let gen = profile.build_with_len(0xEC12, 50_000);
        let mat = MaterializedTrace::capture(&gen);
        let ct = CompactTrace::capture(&gen).expect("encodable");
        assert!(
            ct.bytes() * 3 < mat.bytes(),
            "{}: compact {} B vs record {} B ({:.2} vs {:.2} B/instr)",
            gen.name(),
            ct.bytes(),
            mat.bytes(),
            ct.bytes_per_instr(),
            mat.bytes_per_instr(),
        );
    }
}
