//! Property tests of the external-trace (`ZBXT`) ingest layer, pinned
//! to the checked-in fixture at `tests/fixtures/sample.zbxt` (repo
//! root). The fixture is produced by the deterministic generator in
//! this file; regenerate it after a deliberate format change with
//!
//! ```text
//! ZBP_BLESS_FIXTURE=1 cargo test -p zbp-trace --test ingest_props bless
//! ```
//!
//! and the pin test will fail loudly until the committed bytes match
//! the generator again.

use std::path::PathBuf;
use zbp_trace::ingest::{write_external, ExtSite, EVENT_TAKEN, MAX_RUN};
use zbp_trace::{BranchKind, CompactTrace, ExternalTrace, IngestError, Trace};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/sample.zbxt")
}

/// The fixture program: a hot loop at 0x1000 (conditional, call/return
/// and an unconditional back-edge) with an occasional excursion through
/// a call 16 GiB away — every site shape the ingest layer must handle,
/// including a far target that only survives compact capture through
/// the far-stream escape.
fn fixture_parts() -> (&'static str, u64, Vec<ExtSite>, Vec<u16>) {
    let sites = vec![
        ExtSite { addr: 0x1010, target: 0x1000, len: 4, kind: BranchKind::Conditional },
        ExtSite { addr: 0x1020, target: 0x2000, len: 6, kind: BranchKind::Call },
        ExtSite { addr: 0x2008, target: 0x1026, len: 2, kind: BranchKind::Return },
        ExtSite { addr: 0x102e, target: 0x1000, len: 4, kind: BranchKind::Unconditional },
        ExtSite { addr: 0x1008, target: 0x4_0000_1000, len: 4, kind: BranchKind::Call },
        ExtSite { addr: 0x4_0000_1010, target: 0x100c, len: 2, kind: BranchKind::Return },
    ];
    let mut events = Vec::new();
    for i in 0..200u16 {
        // Base cycle: taken cond, not-taken cond, call, return, jump home.
        events.extend_from_slice(&[
            EVENT_TAKEN,
            0,
            1 | EVENT_TAKEN,
            2 | EVENT_TAKEN,
            3 | EVENT_TAKEN,
        ]);
        if i % 8 == 0 {
            // Far excursion: call out 16 GiB, return, rejoin the loop.
            events.extend_from_slice(&[4 | EVENT_TAKEN, 5 | EVENT_TAKEN, EVENT_TAKEN]);
        }
    }
    ("zbxt-sample", 0x1000, sites, events)
}

fn fixture_bytes() -> Vec<u8> {
    let (name, start, sites, events) = fixture_parts();
    let mut bytes = Vec::new();
    write_external(name, start, &sites, &events, &mut bytes).unwrap();
    bytes
}

#[test]
fn bless_fixture_when_asked() {
    if std::env::var("ZBP_BLESS_FIXTURE").is_err() {
        return;
    }
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, fixture_bytes()).unwrap();
    println!("blessed {}", path.display());
}

#[test]
fn committed_fixture_matches_the_generator() {
    let committed = std::fs::read(fixture_path()).expect(
        "tests/fixtures/sample.zbxt missing — regenerate with \
         ZBP_BLESS_FIXTURE=1 cargo test -p zbp-trace --test ingest_props bless",
    );
    assert_eq!(committed, fixture_bytes(), "fixture bytes drifted from the generator");
}

#[test]
fn fixture_parses_replays_and_survives_compact_capture() {
    let trace = ExternalTrace::parse(&fixture_bytes()).unwrap();
    assert_eq!(trace.name(), "zbxt-sample");
    assert_eq!(trace.sites().len(), 6);
    assert_eq!(trace.events(), 200 * 5 + 25 * 3);
    // 20 instructions per base cycle, 10 per far excursion.
    assert_eq!(trace.len(), 200 * 20 + 25 * 10);
    assert!(trace.taken_fraction() > 0.5);

    // The replayed stream must round-trip the compact encoding exactly,
    // including the 16 GiB far target.
    let compact = CompactTrace::capture(&trace).unwrap();
    let far_seen = trace
        .iter()
        .any(|i| i.branch.as_ref().is_some_and(|b| b.taken && b.target.raw() == 0x4_0000_1000));
    assert!(far_seen, "fixture must exercise the far-target escape");
    let mut a = trace.iter();
    let mut n = 0u64;
    for b in compact.iter() {
        assert_eq!(a.next().unwrap(), b, "instruction {n} diverged");
        n += 1;
    }
    assert_eq!(a.next(), None);
    assert_eq!(n, trace.len());
}

#[test]
fn identity_is_content_not_name() {
    let (_, start, sites, events) = fixture_parts();
    let mut renamed = Vec::new();
    write_external("other-name", start, &sites, &events, &mut renamed).unwrap();
    let a = ExternalTrace::parse(&fixture_bytes()).unwrap();
    let b = ExternalTrace::parse(&renamed).unwrap();
    assert_ne!(a.content_fnv(), b.content_fnv(), "identity hashes the raw bytes");
}

#[test]
fn malformed_headers_are_rejected_loudly() {
    let bytes = fixture_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(ExternalTrace::parse(&bad_magic), Err(IngestError::BadMagic)));

    let mut bad_version = bytes.clone();
    bad_version[4] = 0xFF;
    assert!(matches!(ExternalTrace::parse(&bad_version), Err(IngestError::BadVersion(_))));

    let zstd = [0x28, 0xB5, 0x2F, 0xFD, 0, 0, 0, 0];
    let err = ExternalTrace::parse(&zstd).unwrap_err();
    assert!(matches!(err, IngestError::Compressed("zstd")));
    assert!(err.to_string().contains("decompress"), "error must say what to do: {err}");

    let gzip = [0x1F, 0x8B, 8, 0, 0, 0, 0, 0];
    assert!(matches!(ExternalTrace::parse(&gzip), Err(IngestError::Compressed("gzip"))));
}

#[test]
fn every_truncation_point_errors_without_panicking() {
    let bytes = fixture_bytes();
    for cut in 0..bytes.len() {
        assert!(
            ExternalTrace::parse(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must not parse as a complete trace"
        );
    }
}

#[test]
fn overlong_runs_are_rejected() {
    // One event whose gap from the start exceeds MAX_RUN instructions.
    let sites = vec![ExtSite {
        addr: 0x1000 + (MAX_RUN + 1) * 4,
        target: 0x1000,
        len: 4,
        kind: BranchKind::Unconditional,
    }];
    let mut bytes = Vec::new();
    write_external("runaway", 0x1000, &sites, &[EVENT_TAKEN], &mut bytes).unwrap();
    let err = ExternalTrace::parse(&bytes).unwrap_err();
    assert!(
        matches!(err, IngestError::Corrupt { what: "overlong run", .. }),
        "unexpected error: {err}"
    );

    // The largest legal gap still parses.
    let sites = vec![ExtSite {
        addr: 0x1000 + MAX_RUN * 4,
        target: 0x1000,
        len: 4,
        kind: BranchKind::Unconditional,
    }];
    let mut bytes = Vec::new();
    write_external("barely", 0x1000, &sites, &[EVENT_TAKEN], &mut bytes).unwrap();
    let trace = ExternalTrace::parse(&bytes).unwrap();
    assert_eq!(trace.len(), MAX_RUN + 1);
}

#[test]
fn backward_and_misaligned_gaps_are_rejected() {
    let site = |addr| ExtSite { addr, target: 0x1000, len: 4, kind: BranchKind::Unconditional };

    // Site behind the start address: walking there would go backward.
    let mut bytes = Vec::new();
    write_external("backward", 0x2000, &[site(0x1000)], &[EVENT_TAKEN], &mut bytes).unwrap();
    assert!(matches!(
        ExternalTrace::parse(&bytes).unwrap_err(),
        IngestError::Corrupt { what: "backward event gap", .. }
    ));

    // Gap not divisible by the 4-byte filler instruction size.
    let mut bytes = Vec::new();
    write_external("misaligned", 0x1000, &[site(0x1006)], &[EVENT_TAKEN], &mut bytes).unwrap();
    assert!(matches!(
        ExternalTrace::parse(&bytes).unwrap_err(),
        IngestError::Corrupt { what: "misaligned event gap", .. }
    ));
}

#[test]
fn single_byte_corruption_never_panics() {
    // Deterministic sweep: flipping any single byte either still parses
    // (e.g. an event flag bit) or errors — it must never panic or loop.
    let bytes = fixture_bytes();
    let step = (bytes.len() / 251).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut mutated = bytes.clone();
            mutated[pos] ^= flip;
            let _ = ExternalTrace::parse(&mutated);
        }
    }
}
