//! Dependency-free support utilities shared by every `zbp` crate.
//!
//! The workspace builds in fully offline environments, so the usual
//! ecosystem crates are replaced by two small, deterministic modules:
//!
//! * [`rng`] — an xoshiro256++ PRNG with the subset of the `rand 0.9`
//!   `SmallRng` API the workload generator uses (`seed_from_u64`,
//!   `random_range`, `random_bool`, `random`);
//! * [`json`] — a minimal JSON value type, parser and writer, plus the
//!   [`json::ToJson`] / [`json::FromJson`] traits and the
//!   [`impl_json_struct!`] / [`impl_json_enum!`] macros that stand in
//!   for `serde` derives on the workspace's config / result types;
//! * [`hash`] — stable FNV-1a content hashing for the experiment cell
//!   cache (unlike `DefaultHasher`, identical across toolchains).

#![warn(missing_docs)]

pub mod hash;
pub mod json;
pub mod rng;
