//! Minimal JSON: a value type, parser, writer, and conversion traits.
//!
//! Replaces `serde`/`serde_json` for the workspace's needs — saving
//! experiment artifacts, loading them back for report generation, and
//! config round-trips. Structs and enums opt in through the
//! [`impl_json_struct!`](crate::impl_json_struct) and
//! [`impl_json_enum!`](crate::impl_json_enum) macros, which emit both
//! [`ToJson`] and [`FromJson`] in a serde-compatible layout (objects
//! keyed by field name; unit enum variants as strings; data-carrying
//! variants as single-key objects).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integers are exact to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders the value compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_str(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity literals; degenerate statistics
        // (e.g. a rate with a zero denominator) render as null rather
        // than an unparseable token.
        out.push_str("null");
    } else if n.abs() >= 1e21 {
        // Rust's f64 Display never uses an exponent: it expands 1e300
        // to 301 digits. That is still valid JSON but needlessly huge,
        // so switch to shortest-roundtrip exponent form at the same
        // magnitude JavaScript's Number#toString does. Every committed
        // artifact stays below this (counters < 2^53, CPIs ~1), so
        // golden files are unaffected.
        let _ = write!(out, "{n:e}");
    } else {
        // Shortest-roundtrip decimal form, always a valid JSON number.
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("non-utf8 number".into()))?;
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => err(format!("bad number {text:?} at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| JsonError("non-utf8 escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError(format!("bad \\u escape {hex:?}")))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Builds `Self` from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes compactly (the `serde_json::to_string` stand-in).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Serializes with indentation (the `serde_json::to_string_pretty`
/// stand-in).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// Parses and converts (the `serde_json::from_str` stand-in).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => err("expected bool"),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            _ => err("expected string"),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) => Ok(*n),
            _ => err("expected number"),
        }
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => err(concat!("expected integer ", stringify!($t))),
                }
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => err("expected array"),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            _ => err("expected two-element array"),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Implements [`ToJson`] / [`FromJson`] for a struct by listing its
/// fields: `impl_json_struct!(Point { x, y });`. The JSON layout matches
/// what a serde derive would produce (an object keyed by field name).
#[macro_export]
macro_rules! impl_json_struct {
    ($T:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $T {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field))),*
                ])
            }
        }
        impl $crate::json::FromJson for $T {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: $crate::json::FromJson::from_json(
                        v.get(stringify!($field)).unwrap_or(&$crate::json::Json::Null),
                    )
                    .map_err(|e| $crate::json::JsonError(format!(
                        "{}.{}: {}",
                        stringify!($T),
                        stringify!($field),
                        e.0
                    )))?),*
                })
            }
        }
    };
}

/// Implements [`ToJson`] / [`FromJson`] for an enum of unit and/or
/// struct variants: `impl_json_enum!(Shape { Dot, Box { w, h } });`.
/// Unit variants serialize as their name; struct variants as
/// single-key objects — the same externally-tagged layout serde uses.
#[macro_export]
macro_rules! impl_json_enum {
    ($T:ident { $($variant:ident $({ $($f:ident),* $(,)? })?),* $(,)? }) => {
        impl $crate::json::ToJson for $T {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $($crate::impl_json_enum!(@pat $T $variant $({ $($f),* })?) =>
                        $crate::impl_json_enum!(@to $variant $({ $($f),* })?)),*
                }
            }
        }
        impl $crate::json::FromJson for $T {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                $($crate::impl_json_enum!(@from $T $variant v $({ $($f),* })?);)*
                Err($crate::json::JsonError(format!(
                    "no matching {} variant",
                    stringify!($T)
                )))
            }
        }
    };
    (@pat $T:ident $v:ident) => { $T::$v };
    (@pat $T:ident $v:ident { $($f:ident),* }) => { $T::$v { $($f),* } };
    (@to $v:ident) => {
        $crate::json::Json::Str(stringify!($v).to_string())
    };
    (@to $v:ident { $($f:ident),* }) => {
        $crate::json::Json::Obj(vec![(
            stringify!($v).to_string(),
            $crate::json::Json::Obj(vec![
                $((stringify!($f).to_string(), $crate::json::ToJson::to_json($f))),*
            ]),
        )])
    };
    (@from $T:ident $v:ident $json:ident) => {
        if matches!($json, $crate::json::Json::Str(s) if s == stringify!($v)) {
            return Ok($T::$v);
        }
    };
    (@from $T:ident $v:ident $json:ident { $($f:ident),* }) => {
        if let Some(body) = $json.get(stringify!($v)) {
            return Ok($T::$v {
                $($f: $crate::json::FromJson::from_json(
                    body.get(stringify!($f)).unwrap_or(&$crate::json::Json::Null),
                )?),*
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: u32,
        y: f64,
        label: String,
    }
    crate::impl_json_struct!(Point { x, y, label });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Dot,
        Rect { w: u32, h: u32 },
    }
    crate::impl_json_enum!(Shape { Dot, Rect { w, h } });

    #[test]
    fn struct_roundtrip() {
        let p = Point { x: 3, y: -0.5, label: "a \"b\"\n".into() };
        let s = to_string(&p);
        assert_eq!(from_str::<Point>(&s).unwrap(), p);
    }

    #[test]
    fn enum_roundtrip_both_variant_kinds() {
        for shape in [Shape::Dot, Shape::Rect { w: 4, h: 7 }] {
            let s = to_string(&shape);
            assert_eq!(from_str::<Shape>(&s).unwrap(), shape);
        }
        assert_eq!(to_string(&Shape::Dot), "\"Dot\"");
        assert_eq!(to_string(&Shape::Rect { w: 1, h: 2 }), r#"{"Rect":{"w":1,"h":2}}"#);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        assert_eq!(from_str::<Vec<(String, f64)>>(&to_string(&v)).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(to_string(&o), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("9").unwrap(), Some(9));
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_nesting() {
        let text = r#" { "a" : [ 1 , 2.5 , -3e2 ] , "b" : { "c" : "x\tyA" } , "d" : null } "#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Str("x\tyA".into())));
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn pretty_render_is_reparseable() {
        let p = Point { x: 1, y: 2.0, label: "z".into() };
        let pretty = to_string_pretty(&p);
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Point>(&pretty).unwrap(), p);
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "héllo — ünïcode ✓".to_string();
        assert_eq!(from_str::<String>(&to_string(&s)).unwrap(), s);
    }

    #[test]
    fn integers_roundtrip_exactly() {
        for n in [0u64, 1, 4096, 1 << 52, (1 << 53) - 1] {
            assert_eq!(from_str::<u64>(&to_string(&n)).unwrap(), n);
        }
        assert!(from_str::<u64>("1.5").is_err());
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert_eq!(to_string(&f64::NEG_INFINITY), "null");
        // The rendered form must stay parseable, including nested in a
        // container (the shape a degenerate rate reaches disk in).
        let v = Json::parse(&to_string(&vec![1.0, f64::NAN])).unwrap();
        assert_eq!(v, Json::Arr(vec![Json::Num(1.0), Json::Null]));
    }

    #[test]
    fn huge_magnitudes_use_exponent_form_and_roundtrip() {
        for n in [1e21, -2.5e22, 1e300, f64::MAX, f64::MIN] {
            let text = to_string(&n);
            assert!(text.contains('e'), "{n} should render in exponent form, got {text}");
            assert!(text.len() < 32, "exponent form must stay compact, got {text}");
            assert_eq!(from_str::<f64>(&text).unwrap(), n, "round-trip of {n}");
        }
    }

    #[test]
    fn ordinary_magnitudes_stay_in_plain_decimal() {
        // Everything the artifacts serialize sits far below the 1e21
        // exponent cutover (counters < 2^53, CPIs near 1), so committed
        // goldens keep their existing plain-decimal rendering.
        for (n, want) in [(42.0, "42"), (0.5, "0.5"), (-3.25, "-3.25"), (9e15, "9000000000000000")]
        {
            assert_eq!(to_string(&n), want);
        }
        let below_cutover = 9.9e20;
        let text = to_string(&below_cutover);
        assert!(!text.contains('e'), "below 1e21 stays plain, got {text}");
        assert_eq!(from_str::<f64>(&text).unwrap(), below_cutover);
    }
}
