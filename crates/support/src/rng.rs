//! A small, fast, deterministic PRNG (xoshiro256++).
//!
//! Drop-in replacement for the subset of the `rand 0.9` `SmallRng` API
//! used by the workload generator. Streams are fully determined by the
//! `seed_from_u64` seed and stable across platforms and releases — the
//! golden-stats regression tests depend on that stability.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator seeded through SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the single-word seed, per the xoshiro
        // authors' recommendation (avoids the all-zero state).
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A sample of the type's standard distribution (`f64`: uniform in
    /// `[0, 1)`; integers: uniform over the full domain).
    pub fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.random::<f64>() < p
        }
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Types with a standard distribution for [`SmallRng::random`].
pub trait StandardSample {
    /// Draws one sample.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl StandardSample for f64 {
    fn sample(rng: &mut SmallRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`SmallRng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_samples_stay_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_samples_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(5u64..=5);
            assert_eq!(y, 5);
            let z = r.random_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn bool_probability_is_roughly_honoured() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(1).random_range(3u32..3);
    }
}
