//! Stable, dependency-free content hashing.
//!
//! The experiment cell cache keys its on-disk entries by a digest of the
//! cell's full input description. [`std::hash::DefaultHasher`] is
//! explicitly not guaranteed stable across Rust releases, so cache files
//! written by one toolchain could silently miss under another; FNV-1a is
//! trivially stable, fast on short keys, and good enough for a cache
//! whose entries also embed the full key for collision detection.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a string and renders the digest as 16 lowercase hex digits —
/// the filename-safe form cache entries are stored under.
pub fn fnv1a_64_hex(text: &str) -> String {
    format!("{:016x}", fnv1a_64(text.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_form_is_16_digits_and_stable() {
        let h = fnv1a_64_hex("zbp-cell-v1|sim|seed=3");
        assert_eq!(h.len(), 16);
        assert_eq!(h, fnv1a_64_hex("zbp-cell-v1|sim|seed=3"));
        assert_ne!(h, fnv1a_64_hex("zbp-cell-v1|sim|seed=4"));
    }

    #[test]
    fn distinct_keys_rarely_collide_in_practice() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            assert!(seen.insert(fnv1a_64(format!("key-{i}").as_bytes())));
        }
    }
}
