//! Stable, dependency-free content hashing.
//!
//! The experiment cell cache keys its on-disk entries by a digest of the
//! cell's full input description. [`std::hash::DefaultHasher`] is
//! explicitly not guaranteed stable across Rust releases, so cache files
//! written by one toolchain could silently miss under another; FNV-1a is
//! trivially stable, fast on short keys, and good enough for a cache
//! whose entries also embed the full key for collision detection.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a string and renders the digest as 16 lowercase hex digits —
/// the filename-safe form cache entries are stored under.
pub fn fnv1a_64_hex(text: &str) -> String {
    format!("{:016x}", fnv1a_64(text.as_bytes()))
}

/// A non-cryptographic [`std::hash::Hasher`] for integer-keyed interior
/// maps on simulation hot paths (e.g. the per-branch surprise
/// classifier), where the default SipHash costs more than the table
/// probe it guards. Integer writes fold into a Fibonacci-multiply mix;
/// byte writes fall back to FNV-1a. Not DoS-resistant — never use it
/// for maps keyed by external input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        // Final avalanche so power-of-two table masks see high entropy.
        let h = self.0;
        h ^ (h >> 29)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FastHasher`]; use as the third type
/// parameter of `HashMap`/`HashSet` on hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHashState;

impl std::hash::BuildHasher for FastHashState {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_form_is_16_digits_and_stable() {
        let h = fnv1a_64_hex("zbp-cell-v1|sim|seed=3");
        assert_eq!(h.len(), 16);
        assert_eq!(h, fnv1a_64_hex("zbp-cell-v1|sim|seed=3"));
        assert_ne!(h, fnv1a_64_hex("zbp-cell-v1|sim|seed=4"));
    }

    #[test]
    fn distinct_keys_rarely_collide_in_practice() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            assert!(seen.insert(fnv1a_64(format!("key-{i}").as_bytes())));
        }
    }

    #[test]
    fn fast_hash_map_roundtrips_and_spreads() {
        use std::hash::{BuildHasher, Hasher};
        let mut m: std::collections::HashMap<u64, u64, FastHashState> =
            std::collections::HashMap::default();
        // Aligned instruction addresses (the classifier's key shape).
        for i in 0..10_000u64 {
            m.insert(0x1000 + i * 6, i);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.get(&(0x1000 + 42 * 6)), Some(&42));
        // Low bits must vary even for stride-aligned keys.
        let finish = |k: u64| {
            let mut h = FastHashState.build_hasher();
            h.write_u64(k);
            h.finish()
        };
        let low: std::collections::HashSet<u64> =
            (0..64u64).map(|i| finish(i * 64) & 0xFFF).collect();
        assert!(low.len() > 48, "only {} distinct low-bit patterns", low.len());
    }
}
