//! Property tests for the JSON round-trip: randomized strings (escape
//! soup), float bit patterns, deep nesting, whole random documents, and
//! object key-order preservation. Hand-rolled generation over
//! [`SmallRng`] — the crate is dependency-free by design.

use zbp_support::json::Json;
use zbp_support::rng::SmallRng;

fn roundtrip(value: &Json) {
    let compact = Json::parse(&value.render()).expect("compact rendering parses");
    assert_eq!(&compact, value, "compact round-trip");
    let pretty = Json::parse(&value.render_pretty()).expect("pretty rendering parses");
    assert_eq!(&pretty, value, "pretty round-trip");
}

/// Characters chosen to stress the escaper: quotes, backslashes,
/// control characters, multi-byte UTF-8, and innocents.
const CHAR_POOL: &[char] = &[
    '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{1f}', '\u{7f}', '/', 'a', 'Z', '0', ' ',
    'é', 'ß', '√', '中', '🦀', '\u{e9}', '\u{2028}', '\u{2029}', '\u{fffd}',
];

fn random_string(rng: &mut SmallRng, max_len: usize) -> String {
    let len = rng.random_range(0..max_len + 1);
    (0..len).map(|_| CHAR_POOL[rng.random_range(0..CHAR_POOL.len())]).collect()
}

#[test]
fn strings_full_of_escapes_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x0E5C_49E5);
    for _ in 0..500 {
        roundtrip(&Json::Str(random_string(&mut rng, 40)));
    }
}

#[test]
fn float_bit_patterns_round_trip_exactly_or_render_null() {
    let mut rng = SmallRng::seed_from_u64(0xF10A7);
    for i in 0..2_000u64 {
        // Mix raw bit patterns (hits subnormals, huge exponents) with
        // "ordinary" magnitudes.
        let x = if i % 2 == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            rng.random::<f64>() * 10f64.powi(rng.random_range(0..61usize) as i32 - 30)
        };
        let rendered = Json::Num(x).render();
        let parsed = Json::parse(&rendered).expect("number rendering parses");
        if x.is_finite() {
            match parsed {
                Json::Num(y) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "float {x:e} must round-trip bit-exactly (rendered {rendered:?})"
                ),
                other => panic!("finite {x:e} parsed as {other:?}"),
            }
        } else {
            // JSON has no NaN/Infinity; the writer documents them as null.
            assert_eq!(parsed, Json::Null, "non-finite {x:?} must render as null");
        }
    }
}

#[test]
fn extreme_finite_floats_round_trip() {
    for x in [
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        f64::EPSILON,
        5e-324, // smallest subnormal
        -0.0,
        9_007_199_254_740_993f64, // 2^53 + 1 (rounds to 2^53, still round-trips)
        1e308,
        -1e-308,
    ] {
        let parsed = Json::parse(&Json::Num(x).render()).unwrap();
        let Json::Num(y) = parsed else { panic!("{x:e} did not parse as a number") };
        assert_eq!(x.to_bits(), y.to_bits(), "{x:e} must round-trip bit-exactly");
    }
}

#[test]
fn deep_nesting_round_trips() {
    for depth in [1usize, 10, 50, 200] {
        let mut value = Json::Num(42.0);
        for level in 0..depth {
            value = if level % 2 == 0 {
                Json::Arr(vec![value])
            } else {
                Json::Obj(vec![("deeper".into(), value)])
            };
        }
        roundtrip(&value);
    }
}

#[test]
fn object_key_order_is_preserved() {
    let mut rng = SmallRng::seed_from_u64(0x000B_DE12);
    for round in 0..100 {
        let n = rng.random_range(1..20usize);
        // Unique keys in a random-looking order (suffix guarantees
        // uniqueness even when the random prefix collides).
        let pairs: Vec<(String, Json)> = (0..n)
            .map(|i| {
                let key = format!("{}-{round}-{i}", random_string(&mut rng, 6));
                (key, Json::Num(i as f64))
            })
            .collect();
        let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
        let obj = Json::Obj(pairs);
        for text in [obj.render(), obj.render_pretty()] {
            let Json::Obj(parsed) = Json::parse(&text).unwrap() else {
                panic!("object did not parse as an object")
            };
            let parsed_keys: Vec<String> = parsed.iter().map(|(k, _)| k.clone()).collect();
            assert_eq!(parsed_keys, keys, "insertion order must survive the round-trip");
        }
    }
}

fn random_json(rng: &mut SmallRng, depth: usize) -> Json {
    match if depth == 0 { rng.random_range(0..4usize) } else { rng.random_range(0..6usize) } {
        0 => Json::Null,
        1 => Json::Bool(rng.random_bool(0.5)),
        2 => {
            // Finite by construction: the document round-trip asserts
            // exact equality, which null-rendered NaN would break.
            let mut x = f64::from_bits(rng.next_u64());
            if !x.is_finite() {
                x = rng.random::<f64>();
            }
            Json::Num(x)
        }
        3 => Json::Str(random_string(rng, 12)),
        4 => {
            let n = rng.random_range(0..4usize);
            Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.random_range(0..4usize);
            Json::Obj((0..n).map(|i| (format!("k{i}"), random_json(rng, depth - 1))).collect())
        }
    }
}

#[test]
fn random_documents_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xD0C5);
    for _ in 0..300 {
        roundtrip(&random_json(&mut rng, 4));
    }
}
